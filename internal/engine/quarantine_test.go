// Panic isolation: a panicking operator, shard worker, or subscriber
// callback must quarantine its own query — error surfaced through
// Query.Err, output frozen — while sibling queries on the same engine keep
// running and every goroutine drains. Runs under -race in the dedicated CI
// fault-injection job.
package engine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/operators"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/workload"
)

// panicPlan compiles the CIDR07 query and arms its pattern stage to panic
// on the nth Process call. The returned plan is hand-built (source-less),
// which is fine: quarantine tests never snapshot.
func panicPlan(t *testing.T, name string, after int) *plan.Plan {
	t.Helper()
	p, err := plan.Compile(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	stages := append([]operators.Op{faultinject.NewPanicOp(p.Stages[0], after)}, p.Stages[1:]...)
	return &plan.Plan{Name: name, Stages: stages, Spec: p.Spec}
}

// TestOperatorPanicQuarantinesQuery: a panicking stage on one query is
// isolated — its error is surfaced, its output frozen, and a sibling query
// fed the same input stays byte-identical to an unshared oracle run.
func TestOperatorPanicQuarantinesQuery(t *testing.T) {
	defer leakcheck.Check(t)()
	in := durabilityWorkload()

	e := New()
	bad := e.Register(panicPlan(t, "doomed", 10))
	good, err := e.RegisterText(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(in)

	if bad.Err() == nil {
		t.Fatal("panicking query reports no error")
	}
	if !strings.Contains(bad.Err().Error(), "quarantined") {
		t.Fatalf("unexpected quarantine error: %v", bad.Err())
	}
	frozen := bad.Results()
	bad.Push(in[0])
	if n := len(bad.Results()); n != len(frozen) {
		t.Fatalf("quarantined query kept emitting: %d -> %d items", len(frozen), n)
	}
	if good.Err() != nil {
		t.Fatalf("sibling query was poisoned: %v", good.Err())
	}
	oracle := run(t, monitorQuery, in)
	compareStreams(t, "sibling isolation", good.Results(), oracle.Results())
}

// TestSubscriberPanicQuarantines: a panicking subscriber callback
// quarantines the query instead of unwinding into the engine; remaining
// subscribers and input are skipped.
func TestSubscriberPanicQuarantines(t *testing.T) {
	defer leakcheck.Check(t)()
	in := durabilityWorkload()
	e := New()
	q, err := e.RegisterText(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := e.RegisterText(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	delivered, after := 0, 0
	q.Subscribe(func(event.Event) {
		delivered++
		if delivered == 3 {
			panic("subscriber exploded")
		}
	})
	q.Subscribe(func(event.Event) { after++ })
	e.Run(in)
	if q.Err() == nil || !strings.Contains(q.Err().Error(), "subscriber callback") {
		t.Fatalf("subscriber panic not surfaced: %v", q.Err())
	}
	if delivered != 3 {
		t.Fatalf("subscriber ran %d times after panicking on call 3", delivered)
	}
	if after > 2 {
		t.Fatalf("later subscriber saw %d items after the quarantine batch", after)
	}
	if sibling.Err() != nil {
		t.Fatalf("sibling poisoned: %v", sibling.Err())
	}
	oracle := run(t, monitorQuery, in)
	compareStreams(t, "sibling under subscriber panic", sibling.Results(), oracle.Results())
}

// TestShardedWorkerPanicIsolation: a shard worker panic must not deadlock
// the merger or leak workers; the failure surfaces through RunShardedOp's
// error (the same onFail path the engine wires to Query.Err).
func TestShardedWorkerPanicIsolation(t *testing.T) {
	defer leakcheck.Check(t)()
	cfg := workload.Uniform{Seed: 3, Events: 600, Groups: 16, Spacing: 4, Lifetime: 10}
	in := delivery.Deliver(workload.UniformEvents(cfg), delivery.Ordered(8))

	// The trigger counter is shared across clones, so exactly one worker
	// (whichever processes the armed event) panics mid-stream.
	armed := faultinject.NewPanicOp(operators.NewAggregate(operators.Count, "", "g"), 150)
	out, _, err := RunShardedOp(
		func() operators.Op { return armed.Clone() },
		consistency.Middle(), 4, RouteByAttr("g", 4), in)
	if err == nil {
		t.Fatal("worker panic not surfaced")
	}
	if !strings.Contains(err.Error(), "shard worker panicked") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Output up to the failure is a prefix of the healthy run.
	healthy, _, err := RunShardedOp(
		func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") },
		consistency.Middle(), 4, RouteByAttr("g", 4), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > len(healthy) {
		t.Fatalf("failed run emitted more (%d) than the healthy run (%d)", len(out), len(healthy))
	}
	compareStreams(t, "pre-failure prefix", out, healthy[:len(out)])
}

// TestShardedWorkerPanicEveryBurstOffset: with a tiny router burst, sweep
// the panic trigger across several bursts' worth of Process calls so the
// failure lands at every intra-run offset — first item of a run, every
// middle position, and the run boundary itself. The PanicOp counter is
// shared across worker clones, so each sweep value arms exactly one
// global call site. Whatever the offset, the worker must hand the merger
// an aligned (empty-output) burst, the merged output must be a prefix of
// the healthy run, and finish must drain without deadlock.
func TestShardedWorkerPanicEveryBurstOffset(t *testing.T) {
	defer leakcheck.Check(t)()
	const (
		shards = 3
		burst  = 4
	)
	cfg := workload.Uniform{Seed: 7, Events: 240, Groups: 9, Spacing: 4, Lifetime: 10}
	in := delivery.Deliver(workload.UniformEvents(cfg), delivery.Ordered(8))
	mk := func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") }

	healthy, _, err := RunShardedOpBurst(mk, consistency.Middle(), shards, burst,
		RouteByAttr("g", shards), in)
	if err != nil {
		t.Fatal(err)
	}
	// 4 full bursts per shard: offsets 0..burst-1 within a run are all hit
	// on every worker, several times over.
	for after := 1; after <= 4*shards*burst; after++ {
		armed := faultinject.NewPanicOp(mk(), after)
		out, _, err := RunShardedOpBurst(
			func() operators.Op { return armed.Clone() },
			consistency.Middle(), shards, burst, RouteByAttr("g", shards), in)
		if err == nil {
			t.Fatalf("after=%d: worker panic not surfaced", after)
		}
		if !strings.Contains(err.Error(), "shard worker panicked") {
			t.Fatalf("after=%d: unexpected error: %v", after, err)
		}
		if len(out) > len(healthy) {
			t.Fatalf("after=%d: failed run emitted more (%d) than the healthy run (%d)",
				after, len(out), len(healthy))
		}
		compareStreams(t, "pre-failure prefix", out, healthy[:len(out)])
	}
}

// TestShardedQueryWorkerPanicQuarantines: the engine-level wiring — a
// worker panic under a sharded standing query quarantines that query via
// onFail, Finish still drains, and a single-shard sibling is untouched.
func TestShardedQueryWorkerPanicQuarantines(t *testing.T) {
	defer leakcheck.Check(t)()
	in := durabilityWorkload()
	e := New()
	q, err := e.RegisterText(monitorQuery, plan.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if q.Shards() != 4 {
		t.Fatalf("query runs %d shards, want 4", q.Shards())
	}
	sibling, err := e.RegisterText(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Reach into the runtime and arm every shard's head operator with its
	// own early trigger (the swap happens before any push, so each worker
	// goroutine owns its op). Several workers may panic; the first failure
	// wins and the rest must be absorbed without deadlock.
	for _, w := range q.ch.sh.workers {
		w.monitors[0] = consistency.NewMonitor(
			faultinject.NewPanicOp(mustStages(t)[0], 3), q.ch.plan.Spec)
	}

	e.Run(in)
	if q.Err() == nil || !strings.Contains(q.Err().Error(), "shard worker panicked") {
		t.Fatalf("worker panic not quarantined: %v", q.Err())
	}
	if sibling.Err() != nil {
		t.Fatalf("sibling poisoned: %v", sibling.Err())
	}
	oracle := run(t, monitorQuery, in)
	compareStreams(t, "sibling under worker panic", sibling.Results(), oracle.Results())
	// The quarantined query keeps dropping input without deadlock.
	q.Push(in[0])
	q.Finish()
}

func mustStages(t *testing.T) []operators.Op {
	t.Helper()
	p, err := plan.Compile(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	return p.Stages
}

// TestPipelinedStagePanicQuarantines: RunPipelined's goroutine-per-stage
// mode recovers a stage panic, quarantines, and terminates (no goroutine
// wedged on a full channel).
func TestPipelinedStagePanicQuarantines(t *testing.T) {
	defer leakcheck.Check(t)()
	in := durabilityWorkload()
	e := New()
	q := e.Register(panicPlan(t, "doomed", 10))
	out := q.RunPipelined(in, 4)
	if q.Err() == nil {
		t.Fatal("pipelined stage panic not surfaced")
	}
	healthy := run(t, monitorQuery, in)
	if len(out) > len(healthy.Results()) {
		t.Fatalf("quarantined pipeline emitted %d items, healthy run %d", len(out), len(healthy.Results()))
	}
}

// TestStalledShardStillDrains: a stalled worker delays output but loses
// nothing — finish waits for the slow shard and the merged output is
// byte-identical to the un-stalled run.
func TestStalledShardStillDrains(t *testing.T) {
	defer leakcheck.Check(t)()
	cfg := workload.Uniform{Seed: 5, Events: 400, Groups: 16, Spacing: 4, Lifetime: 10}
	in := delivery.Deliver(workload.UniformEvents(cfg), delivery.Ordered(8))
	armed := faultinject.NewStallOp(operators.NewAggregate(operators.Count, "", "g"), 100, 150*time.Millisecond)
	start := time.Now()
	out, _, err := RunShardedOp(
		func() operators.Op { return armed.Clone() },
		consistency.Middle(), 4, RouteByAttr("g", 4), in)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 150*time.Millisecond {
		t.Fatal("stall did not fire")
	}
	want, _, err := RunShardedOp(
		func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") },
		consistency.Middle(), 4, RouteByAttr("g", 4), in)
	if err != nil {
		t.Fatal(err)
	}
	compareStreams(t, "stalled shard", out, want)
}

// TestDuplicatedPunctuationIsIdempotent: re-delivered CTIs (at-least-once
// transport) must not change the query's data output — guarantees are
// idempotent.
func TestDuplicatedPunctuationIsIdempotent(t *testing.T) {
	defer leakcheck.Check(t)()
	in := durabilityWorkload()
	dataOnly := func(s stream.Stream) stream.Stream {
		var out stream.Stream
		for _, ev := range s {
			if !ev.IsCTI() {
				out = append(out, ev)
			}
		}
		return out
	}
	want := run(t, monitorQuery, in)
	got := run(t, monitorQuery, faultinject.DuplicatePunctuation(in, 2))
	compareStreams(t, "duplicated punctuation", dataOnly(got.Results()), dataOnly(want.Results()))
}

// TestDelayedDeliveryConverges: delivery held back within its guarantees
// (never past a CTI) must still converge to the same alert set under the
// blocking middle spec.
func TestDelayedDeliveryConverges(t *testing.T) {
	defer leakcheck.Check(t)()
	src, expected := workload.MachineEvents(workload.Machines{
		Seed: 11, Machines: 5, Cycles: 2,
		RestartDeadline: 5 * temporal.Minute, MissProb: 0.5, CycleGap: 30 * temporal.Minute,
	})
	in := delivery.Deliver(src, delivery.Ordered(temporal.Minute))
	chaotic := faultinject.DelayDelivery(in, 99, 0.3, 3)
	q := run(t, monitorQuery, chaotic)
	if got := alerts(q); got != expected {
		t.Fatalf("delayed delivery: %d alerts, want %d", got, expected)
	}
}

// TestEngineCloseIdempotent: Close is a no-op the second time, drains the
// sharded runtime, and a closed engine drops input without processing it.
func TestEngineCloseIdempotent(t *testing.T) {
	defer leakcheck.Check(t)()
	in := durabilityWorkload()
	e := New()
	q, err := e.RegisterText(monitorQuery, plan.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range in[:len(in)/2] {
		e.Push(ev)
	}
	q.drainShards()
	before := len(q.Results())
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	for _, ev := range in[len(in)/2:] {
		e.Push(ev)
	}
	e.Finish()
	if got := len(q.Results()); got != before {
		t.Fatalf("closed engine kept emitting: %d -> %d items", before, got)
	}
}
