// Package engine executes CEDR query plans: it fans incoming physical
// events out to registered standing queries, drives each query's pipelined
// chain of consistency-monitored operators, and collects outputs and
// metrics. Queries may run synchronously (deterministic, used by tests and
// benchmarks) or as a goroutine-per-stage pipeline connected by channels.
package engine

import (
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/consistency"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/wal"
)

// Engine hosts standing queries.
type Engine struct {
	mu      sync.RWMutex
	queries []*Query
	shards  int // default shard count for queries that don't request one
	burst   int // router burst size for sharded queries (0 = DefaultBurst)

	// Durability (see durability.go). log is attached once, by Restore,
	// before the engine is shared; nil means durability is off and the hot
	// path stays exactly as before (one nil check per Push).
	log       *wal.Log
	journal   []wal.Record // applied records, for Snapshot; durable engines only
	seq       uint64       // sequence of the last applied record
	replaying bool         // Restore replay in progress: suppress re-logging
	walErr    error        // first WAL failure; the engine fails stop
	nonDur    []string     // names of queries that bypassed durable registration
	pushMu    sync.Mutex   // durable engines: serializes log order = apply order
	closed    bool
	finished  bool
}

// Option adjusts engine construction.
type Option func(*Engine)

// WithShards sets the default shard count for registered queries whose
// plans are key-partitionable and do not request an explicit count via
// plan.WithShards. Pass plan.AutoShards to let each registration pick its
// count from the plan's cost estimate and the available cores.
func WithShards(n int) Option {
	return func(e *Engine) { e.shards = n }
}

// WithBurst sets the sharded router's burst size: the number of
// consecutive input items accumulated per shard run before handoff
// (0 = DefaultBurst, negative = flush only on punctuation and control
// items). Output is byte-identical at any burst size; only handoff
// amortization and latency shift.
func WithBurst(n int) Option {
	return func(e *Engine) { e.burst = n }
}

// New creates an empty engine.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Register compiles the plan into a standing query.
//
// Ordering guarantee: Register is safe to call concurrently with Push. The
// new query observes every item pushed after Register returns and none
// pushed before it was called; items pushed concurrently with the call may
// or may not be observed (each in-flight Push snapshots the query list
// once, so a query never sees a suffix of one Push's fan-out).
//
// A plan that requests shards (plan.WithShards, or the engine default) and
// passes partitionability analysis runs on the key-partitioned parallel
// runtime (shard.go); all other plans run single-shard.
func (e *Engine) Register(p *plan.Plan) *Query {
	// Durable engines log the registration ahead of installing it, so a
	// recovered engine re-creates the query at the same position in the
	// input sequence. Plans without source text cannot be re-compiled on
	// recovery; they register, but Snapshot refuses until they are gone.
	if e.log != nil && !e.replaying {
		e.pushMu.Lock()
		defer e.pushMu.Unlock()
		if d, ok := p.Durable(); ok {
			e.logAppend(wal.Record{Kind: wal.KindRegister, Src: d.Src, Opts: wal.RegOpts{
				HasSpec:          d.HasSpec,
				Spec:             d.Spec,
				Shards:           d.Shards,
				NoSpecialization: d.NoSpecialization,
				NoPushdown:       d.NoPushdown,
			}})
		} else {
			e.mu.Lock()
			e.nonDur = append(e.nonDur, p.Name)
			e.mu.Unlock()
		}
	}
	q := &Query{name: p.Name, plan: p, eng: e}
	n := p.Shards
	if n == 0 {
		n = e.shards
	}
	if n == plan.AutoShards {
		n = autoShards(p)
	}
	if n > 1 && p.Part.OK() {
		stagesFor := func(shard int) ([]operators.Op, error) {
			if shard == 0 {
				return p.Stages, nil
			}
			fp, err := p.Fresh()
			if err != nil {
				return nil, err
			}
			return fp.Stages, nil
		}
		sh, err := newSharded(n, e.burst, stagesFor, p.Spec, routeForPlan(p.Part, n), q.deliverMerged, p.MonitorOpts...)
		if err == nil {
			q.sh = sh
			q.shards = n
			sh.onFail = q.quarantine
		}
		// On error (hand-built plan that cannot be re-instantiated): fall
		// back to single-shard execution below.
	}
	if q.sh == nil {
		q.shards = 1
		for _, op := range p.Stages {
			q.monitors = append(q.monitors, consistency.NewMonitor(op, p.Spec, p.MonitorOpts...))
		}
	}
	e.mu.Lock()
	q.idx = len(e.queries)
	e.queries = append(e.queries, q)
	e.mu.Unlock()
	return q
}

// RegisterText compiles CEDR query text and registers it. Compilation is
// cached by source text (plan.Compile), so re-registering the same query —
// on this engine or another — skips parsing and semantic analysis.
func (e *Engine) RegisterText(src string, opts ...plan.Option) (*Query, error) {
	p, err := plan.Compile(src, opts...)
	if err != nil {
		return nil, err
	}
	return e.Register(p), nil
}

// Queries lists the registered queries.
func (e *Engine) Queries() []*Query {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]*Query(nil), e.queries...)
}

// snapshot returns the current query list without copying. Register only
// ever appends (the backing array is never mutated in place), so the
// returned slice stays valid after the lock is released.
func (e *Engine) snapshot() []*Query {
	e.mu.RLock()
	qs := e.queries
	e.mu.RUnlock()
	return qs
}

// Query returns the named query, if registered.
func (e *Engine) Query(name string) (*Query, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, q := range e.queries {
		if q.name == name {
			return q, true
		}
	}
	return nil, false
}

// Push delivers one physical item to every registered query. The query
// list is snapshotted once per call — no per-event copying, and concurrent
// Registers only take effect for subsequent pushes. On a durable engine
// the item is appended to the write-ahead log first; if the log has failed
// (fsync error), the engine fails stop and drops the item — input that is
// not durable is not processed.
func (e *Engine) Push(ev event.Event) {
	if e.log != nil {
		e.pushMu.Lock()
		defer e.pushMu.Unlock()
		kind := wal.KindEvent
		if ev.IsCTI() {
			kind = wal.KindCTI
		}
		if !e.logAppend(wal.Record{Kind: kind, Ev: ev}) {
			return
		}
	}
	for _, q := range e.snapshot() {
		q.Push(ev)
	}
}

// Finish flushes every query. On a durable engine the flush is logged, so
// recovery reproduces the completed output histories.
func (e *Engine) Finish() {
	if e.log != nil {
		e.pushMu.Lock()
		defer e.pushMu.Unlock()
		e.mu.Lock()
		first := !e.finished
		e.finished = true
		e.mu.Unlock()
		if first && !e.logAppend(wal.Record{Kind: wal.KindFinish}) {
			return
		}
	}
	for _, q := range e.snapshot() {
		q.Finish()
	}
}

// Run pushes an entire physical stream and finishes; a convenience for
// finite workloads. The query list is snapshotted once for the whole run
// (durable engines go through Push/Finish so every item is logged).
func (e *Engine) Run(s stream.Stream) {
	if e.log != nil {
		for _, ev := range s {
			e.Push(ev)
		}
		e.Finish()
		return
	}
	qs := e.snapshot()
	for _, ev := range s {
		for _, q := range qs {
			q.Push(ev)
		}
	}
	for _, q := range qs {
		q.Finish()
	}
}

// Query is one standing query: a chain of consistency monitors, or — when
// the plan is key-partitionable and shards were requested — a sharded
// parallel runtime of N such chains behind a deterministic merge.
type Query struct {
	name     string
	plan     *plan.Plan
	monitors []*consistency.Monitor
	sh       *sharded
	shards   int
	eng      *Engine // owning engine, for durable spec-change logging
	idx      int     // position in the engine's query list (the WAL's query id)

	mu       sync.Mutex
	finished bool
	closed   bool  // engine shutdown: delivery is muted (see Query.shutdown)
	err      error // quarantine: first panic from a stage or subscriber
	results  stream.Stream
	subs     []func(event.Event)

	// batchA/batchB are the double-buffered inter-stage batches reused by
	// Push and Finish, so driving the chain allocates nothing per event.
	batchA, batchB []event.Event
}

// Err returns the error that quarantined the query: the recovered panic of
// an operator stage, shard worker, or subscriber callback. A quarantined
// query stops processing input and emitting output, but its results up to
// the failure remain readable; sibling queries are unaffected. Err is nil
// while the query is healthy.
func (q *Query) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// quarantine records the failure that isolates the query. The first error
// wins; later ones (cascading noise from an already-broken pipeline) are
// dropped.
func (q *Query) quarantine(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
}

// quarantineLocked is quarantine for callers already holding q.mu.
func (q *Query) quarantineLocked(err error) {
	if q.err == nil {
		q.err = err
	}
}

// recoverPanic converts a recovered panic value into the quarantine error.
func recoverPanic(name, where string, r any) error {
	return fmt.Errorf("engine: query %s quarantined: %s panicked: %v\n%s", name, where, r, debug.Stack())
}

// Name returns the query's registered name.
func (q *Query) Name() string { return q.name }

// Plan returns the compiled plan.
func (q *Query) Plan() *plan.Plan { return q.plan }

// Shards returns the number of parallel shards the query runs on (1 for
// single-shard execution).
func (q *Query) Shards() int { return q.shards }

// Subscribe adds a callback invoked for every output item (including
// punctuation). Callbacks run synchronously on the pushing goroutine.
func (q *Query) Subscribe(fn func(event.Event)) {
	q.mu.Lock()
	q.subs = append(q.subs, fn)
	q.mu.Unlock()
}

// Push feeds one physical item through the monitor chain and returns the
// final-stage outputs. The returned slice is reused by the next Push on
// this query; callers must copy what they keep.
//
// On a sharded query Push only enqueues (shards run asynchronously) and
// returns nil; merged output reaches Results and subscribers in
// deterministic order as the shards drain.
//
// Finish closes the query: items pushed afterwards are dropped, on every
// execution mode.
func (q *Query) Push(ev event.Event) []event.Event {
	if q.sh != nil {
		q.mu.Lock()
		dead := q.err != nil || q.closed
		q.mu.Unlock()
		if !dead {
			q.sh.push(ev)
		}
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.finished || q.err != nil {
		return nil
	}
	// The monitor chain runs under a recover barrier: a panicking operator
	// quarantines this query (Err) instead of killing the process, and
	// sibling queries sharing the engine keep running.
	defer func() {
		if r := recover(); r != nil {
			q.quarantineLocked(recoverPanic(q.name, "operator stage", r))
		}
	}()
	batch := append(q.batchA[:0], ev)
	next := q.batchB[:0]
	for _, m := range q.monitors {
		next = next[:0]
		for _, item := range batch {
			next = append(next, m.Push(0, item)...)
		}
		batch, next = next, batch
		if len(batch) == 0 {
			q.batchA, q.batchB = batch, next
			return nil
		}
	}
	q.batchA, q.batchB = batch, next
	q.deliver(batch)
	return batch
}

// Finish flushes the chain and closes the query: each stage's Finish
// output cascades through the remaining stages, and subsequent pushes are
// dropped. On a sharded query it drains every shard and the merge stage
// before returning the merged finish outputs.
func (q *Query) Finish() []event.Event {
	if q.sh != nil {
		return q.sh.finish()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.finished || q.err != nil {
		return nil
	}
	q.finished = true
	defer func() {
		if r := recover(); r != nil {
			q.quarantineLocked(recoverPanic(q.name, "operator stage", r))
		}
	}()
	var final []event.Event
	for i := range q.monitors {
		batch := q.monitors[i].Finish()
		for j := i + 1; j < len(q.monitors); j++ {
			var next []event.Event
			for _, item := range batch {
				next = append(next, q.monitors[j].Push(0, item)...)
			}
			batch = next
		}
		final = append(final, batch...)
	}
	q.deliver(final)
	return final
}

func (q *Query) deliver(items []event.Event) {
	// A closed engine discards unlogged late output; a quarantined query
	// has stopped emitting (results up to the failure stay readable).
	if q.closed || q.err != nil {
		return
	}
	q.results = append(q.results, items...)
	for _, fn := range q.subs {
		if q.err != nil {
			return
		}
		q.deliverSafely(fn, items)
	}
}

// deliverSafely invokes one subscriber over the batch under a recover
// barrier: a panicking callback quarantines the query (remaining
// subscribers and future input are skipped) instead of unwinding into the
// engine or the shard merger.
func (q *Query) deliverSafely(fn func(event.Event), items []event.Event) {
	defer func() {
		if r := recover(); r != nil {
			q.quarantineLocked(recoverPanic(q.name, "subscriber callback", r))
		}
	}()
	for _, it := range items {
		fn(it)
	}
}

// deliverMerged is the sharded runtime's delivery callback; it runs on the
// merger goroutine (subscriber callbacks therefore run there too).
func (q *Query) deliverMerged(items []event.Event) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.deliver(items)
}

// Results returns everything the query has emitted so far (data and
// punctuation), in emission order.
func (q *Query) Results() stream.Stream {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append(stream.Stream(nil), q.results...)
}

// Metrics returns per-stage monitor metrics. On a sharded query it waits
// for the shards to drain everything pushed so far, then combines the
// per-shard counters into the single-shard equivalents (callers must not
// Push concurrently). Combined counters and the head stage's state axes
// match single-shard execution exactly; downstream stages' MaxState is
// sampled once per input item and may under-read momentary intra-item
// peaks a single-shard run would catch.
func (q *Query) Metrics() []consistency.Metrics {
	if q.sh != nil {
		return q.sh.metrics()
	}
	out := make([]consistency.Metrics, len(q.monitors))
	for i, m := range q.monitors {
		out[i] = m.Metrics()
	}
	return out
}

// SetSpec switches the query's consistency level at runtime (Section 5's
// consistency-sensitive adaptation); released buffered output cascades
// through the chain. On a sharded query the switch is enqueued and takes
// effect at this position in the input sequence on every shard.
func (q *Query) SetSpec(s consistency.Spec) {
	if e := q.eng; e != nil && e.log != nil {
		e.pushMu.Lock()
		defer e.pushMu.Unlock()
		if !e.replaying && !e.logAppend(wal.Record{Kind: wal.KindSpec, Query: q.idx, Spec: s}) {
			return
		}
	}
	q.setSpecApply(s)
}

// setSpecApply performs the switch without durable logging (the replay
// path applies already-logged records through it).
func (q *Query) setSpecApply(s consistency.Spec) {
	if q.sh != nil {
		q.sh.setSpec(s)
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.finished || q.err != nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			q.quarantineLocked(recoverPanic(q.name, "operator stage", r))
		}
	}()
	for i, m := range q.monitors {
		batch := m.SetSpec(s)
		for j := i + 1; j < len(q.monitors); j++ {
			var next []event.Event
			for _, item := range batch {
				next = append(next, q.monitors[j].Push(0, item)...)
			}
			batch = next
		}
		q.deliver(batch)
	}
}

// RunPipelined executes the query over a finite source as a goroutine-per-
// stage pipeline connected by channels — the paper's pipelined execution
// plan — and returns the collected output. The query must be freshly
// registered (no interleaved Push use). A sharded query is already a
// goroutine pipeline (worker-per-shard plus a merger); there the source is
// streamed through the shard router and the merged output returned.
func (q *Query) RunPipelined(src stream.Stream, buf int) stream.Stream {
	if q.sh != nil {
		for _, ev := range src {
			q.sh.push(ev)
		}
		q.sh.finish()
		return q.Results()
	}
	if buf <= 0 {
		buf = 64
	}
	in := src.Chan(buf)
	for _, m := range q.monitors {
		m := m
		out := make(chan event.Event, buf)
		go func(in <-chan event.Event, out chan<- event.Event) {
			defer close(out)
			// A panicking stage quarantines the query and drains its input
			// so upstream stages don't block on a full channel.
			defer func() {
				if r := recover(); r != nil {
					q.quarantine(recoverPanic(q.name, "pipelined stage", r))
					for range in {
					}
				}
			}()
			for ev := range in {
				for _, o := range m.Push(0, ev) {
					out <- o
				}
			}
			for _, o := range m.Finish() {
				out <- o
			}
		}(in, out)
		in = out
	}
	results := stream.Collect(in)
	q.mu.Lock()
	q.results = append(q.results, results...)
	q.mu.Unlock()
	return results
}

// String implements fmt.Stringer.
func (q *Query) String() string {
	if q.shards > 1 {
		return fmt.Sprintf("query %s: %s × %d shards", q.name, q.plan.Spec.Name(), q.shards)
	}
	return fmt.Sprintf("query %s: %s", q.name, q.plan.Spec.Name())
}
