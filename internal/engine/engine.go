// Package engine executes CEDR query plans: it fans incoming physical
// events out to registered standing queries, drives each query's pipelined
// chain of consistency-monitored operators, and collects outputs and
// metrics. Queries may run synchronously (deterministic, used by tests and
// benchmarks) or as a goroutine-per-stage pipeline connected by channels.
//
// Standing-query fabric: registration is split into two layers. A *chain*
// is one executing operator pipeline (single-shard monitors or the sharded
// runtime) plus a consistency.Fanout of subscriber endpoints; a *Query* is
// one registered endpoint. Plans compiled with plan.WithSharing that carry
// the same sharing identity (plan.ShareKey) attach to one shared chain, so
// N identical registrations cost one execution; each Query still has its
// own Results, Subscribe callbacks, and Err. Lock order across the layers
// is fixed: pushMu → Engine.mu → chain.mu → Query.mu.
package engine

import (
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/consistency"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/wal"
)

// Engine hosts standing queries.
type Engine struct {
	mu      sync.RWMutex
	queries []*Query          // every registration ever, tombstoned on unregister (stable WAL indices)
	chains  []*chain          // live execution chains; removal copies (snapshots stay valid)
	groups  map[string]*chain // sharing identity → its chain
	shards  int               // default shard count for queries that don't request one
	burst   int               // router burst size for sharded queries (0 = DefaultBurst)
	routing bool
	fabric  *fabric // non-nil iff WithRouting

	// Durability (see durability.go). log is attached once, by Restore,
	// before the engine is shared; nil means durability is off and the hot
	// path stays exactly as before (one nil check per Push).
	log       *wal.Log
	journal   []wal.Record // applied records, for Snapshot; durable engines only
	seq       uint64       // sequence of the last applied record
	replaying bool         // Restore replay in progress: suppress re-logging
	walErr    error        // first WAL failure; the engine fails stop
	nonDur    []string     // names of queries that bypassed durable registration
	pushMu    sync.Mutex   // durable engines: serializes log order = apply order
	closed    bool
	finished  bool
}

// Option adjusts engine construction.
type Option func(*Engine)

// WithShards sets the default shard count for registered queries whose
// plans are key-partitionable and do not request an explicit count via
// plan.WithShards. Pass plan.AutoShards to let each registration pick its
// count from the plan's cost estimate and the available cores.
func WithShards(n int) Option {
	return func(e *Engine) { e.shards = n }
}

// WithBurst sets the sharded router's burst size: the number of
// consecutive input items accumulated per shard run before handoff
// (0 = DefaultBurst, negative = flush only on punctuation and control
// items). Output is byte-identical at any burst size; only handoff
// amortization and latency shift.
func WithBurst(n int) Option {
	return func(e *Engine) { e.burst = n }
}

// WithRouting enables the fabric's cross-query routing index: each pushed
// data event is delivered only to the chains whose plans can possibly match
// it (by event TYPE and, for key-specialized plans, by routing-key value);
// punctuation is still broadcast. Routing changes the delivery semantics a
// chain observes — it behaves as if its input stream had been pre-filtered
// to the events its plan can react to — so a routed engine is compared
// against routed independents, never against an unrouted run (emission
// stamps on blocked output can differ; detected alerts cannot). See
// fabric.go.
func WithRouting() Option {
	return func(e *Engine) { e.routing = true }
}

// New creates an empty engine.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	if e.routing {
		e.fabric = newFabric()
	}
	return e
}

// Register compiles the plan into a standing query.
//
// Ordering guarantee: Register is safe to call concurrently with Push. The
// new query observes every item pushed after Register returns and none
// pushed before it was called; items pushed concurrently with the call may
// or may not be observed (each in-flight Push snapshots the chain list
// once, so a query never sees a suffix of one Push's fan-out).
//
// A plan compiled with plan.WithSharing whose sharing identity matches an
// already-registered chain does not build a second pipeline: the new query
// attaches as another endpoint of the existing chain, observing its output
// from the attachment point onward (pub/sub semantics over the warm chain's
// accumulated state). All other plans get a private chain.
//
// A plan that requests shards (plan.WithShards, or the engine default) and
// passes partitionability analysis runs on the key-partitioned parallel
// runtime (shard.go); all other plans run single-shard.
func (e *Engine) Register(p *plan.Plan) *Query {
	// Durable engines log the registration ahead of installing it, so a
	// recovered engine re-creates the query at the same position in the
	// input sequence. Plans without source text cannot be re-compiled on
	// recovery; they register, but Snapshot refuses until they are gone.
	durable := false
	if e.log != nil && !e.replaying {
		e.pushMu.Lock()
		defer e.pushMu.Unlock()
		if d, ok := p.Durable(); ok {
			durable = true
			e.logAppend(wal.Record{Kind: wal.KindRegister, Src: d.Src, Opts: wal.RegOpts{
				HasSpec:          d.HasSpec,
				Spec:             d.Spec,
				Shards:           d.Shards,
				NoSpecialization: d.NoSpecialization,
				NoPushdown:       d.NoPushdown,
				Share:            d.Share,
				Bindings:         d.Bindings,
			}})
		}
	}

	e.mu.Lock()
	var ch *chain
	key := ""
	if p.Share {
		if k, ok := p.ShareKey(); ok {
			key = k
			ch = e.groups[key]
		}
	}
	fresh := ch == nil
	if fresh {
		ch = e.buildChain(p)
		ch.key = key
	}
	q := &Query{name: p.Name, eng: e, ch: ch, idx: len(e.queries)}
	if e.log != nil && !e.replaying && !durable {
		q.nonDur = true
		e.nonDur = append(e.nonDur, p.Name)
	}
	e.queries = append(e.queries, q)
	// Attach before publishing the chain, so a fresh chain never emits into
	// an empty fanout (no output-loss window for the first endpoint).
	ch.attach(q)
	if fresh {
		e.chains = append(e.chains, ch)
		if key != "" {
			if e.groups == nil {
				e.groups = map[string]*chain{}
			}
			e.groups[key] = ch
		}
		if e.fabric != nil {
			e.fabric.add(ch)
		}
	}
	e.mu.Unlock()
	return q
}

// buildChain constructs the executing pipeline for a plan: the sharded
// runtime when shards are requested and the plan partitions, a single-shard
// monitor chain otherwise.
func (e *Engine) buildChain(p *plan.Plan) *chain {
	ch := &chain{name: p.Name, plan: p, eng: e}
	n := p.Shards
	if n == 0 {
		n = e.shards
	}
	if n == plan.AutoShards {
		n = autoShards(p)
	}
	if n > 1 && p.Part.OK() {
		stagesFor := func(shard int) ([]operators.Op, error) {
			if shard == 0 {
				return p.Stages, nil
			}
			fp, err := p.Fresh()
			if err != nil {
				return nil, err
			}
			return fp.Stages, nil
		}
		sh, err := newSharded(n, e.burst, stagesFor, p.Spec, routeForPlan(p.Part, n), ch.deliverMerged, p.MonitorOpts...)
		if err == nil {
			ch.sh = sh
			ch.shards = n
			sh.onFail = ch.quarantine
		}
		// On error (hand-built plan that cannot be re-instantiated): fall
		// back to single-shard execution below.
	}
	if ch.sh == nil {
		ch.shards = 1
		for _, op := range p.Stages {
			ch.monitors = append(ch.monitors, consistency.NewMonitor(op, p.Spec, p.MonitorOpts...))
		}
	}
	return ch
}

// RegisterText compiles CEDR query text and registers it. Compilation is
// cached by source text (plan.Compile), so re-registering the same query —
// on this engine or another — skips parsing and semantic analysis; with
// plan.WithSharing it also skips execution (the registrations share one
// chain).
func (e *Engine) RegisterText(src string, opts ...plan.Option) (*Query, error) {
	p, err := plan.Compile(src, opts...)
	if err != nil {
		return nil, err
	}
	return e.Register(p), nil
}

// Queries lists the registered queries (unregistered ones excluded).
func (e *Engine) Queries() []*Query {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Query, 0, len(e.queries))
	for _, q := range e.queries {
		q.mu.Lock()
		gone := q.unregistered
		q.mu.Unlock()
		if !gone {
			out = append(out, q)
		}
	}
	return out
}

// snapshot returns the full registration list — including unregistered
// tombstones — without copying. Register only ever appends (the backing
// array is never mutated in place), so the returned slice stays valid after
// the lock is released. Indexing into it with a WAL query id is always
// in-bounds for ids the log produced.
func (e *Engine) snapshot() []*Query {
	e.mu.RLock()
	qs := e.queries
	e.mu.RUnlock()
	return qs
}

// chainsSnapshot returns the live chain list without copying. Register
// appends; Unregister replaces the slice wholesale (copy-on-write), so a
// snapshot taken before a removal still sees a consistent list.
func (e *Engine) chainsSnapshot() []*chain {
	e.mu.RLock()
	cs := e.chains
	e.mu.RUnlock()
	return cs
}

// Query returns the named query, if registered.
func (e *Engine) Query(name string) (*Query, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, q := range e.queries {
		q.mu.Lock()
		gone := q.unregistered
		q.mu.Unlock()
		if q.name == name && !gone {
			return q, true
		}
	}
	return nil, false
}

// Push delivers one physical item to the registered queries. Without
// routing every chain sees every item; with WithRouting data items go
// through the fabric's routing index and punctuation is broadcast. The
// chain list is snapshotted once per call — no per-event copying, and
// concurrent Registers only take effect for subsequent pushes. On a durable
// engine the item is appended to the write-ahead log first; if the log has
// failed (fsync error), the engine fails stop and drops the item — input
// that is not durable is not processed.
func (e *Engine) Push(ev event.Event) {
	if e.log != nil {
		e.pushMu.Lock()
		defer e.pushMu.Unlock()
		kind := wal.KindEvent
		if ev.IsCTI() {
			kind = wal.KindCTI
		}
		if !e.logAppend(wal.Record{Kind: kind, Ev: ev}) {
			return
		}
	}
	e.fanout(ev)
}

// routeBufCap sizes the stack buffer Push routes through; events matching
// more chains spill to the heap, correctness unaffected.
const routeBufCap = 128

// fanout hands one item to every chain that must see it. This is the
// shared delivery step of Push, Run, and WAL replay.
func (e *Engine) fanout(ev event.Event) {
	if e.fabric != nil && !ev.IsCTI() {
		var buf [routeBufCap]*chain
		for _, ch := range e.fabric.route(ev, buf[:0]) {
			ch.push(ev)
		}
		return
	}
	for _, ch := range e.chainsSnapshot() {
		ch.push(ev)
	}
}

// Finish flushes every query. On a durable engine the flush is logged, so
// recovery reproduces the completed output histories.
func (e *Engine) Finish() {
	if e.log != nil {
		e.pushMu.Lock()
		defer e.pushMu.Unlock()
		e.mu.Lock()
		first := !e.finished
		e.finished = true
		e.mu.Unlock()
		if first && !e.logAppend(wal.Record{Kind: wal.KindFinish}) {
			return
		}
	}
	for _, ch := range e.chainsSnapshot() {
		ch.finish()
	}
}

// Run pushes an entire physical stream and finishes; a convenience for
// finite workloads. The chain list is snapshotted once for the whole run
// (durable engines go through Push/Finish so every item is logged; routed
// engines go through the fabric per item).
func (e *Engine) Run(s stream.Stream) {
	if e.log != nil {
		for _, ev := range s {
			e.Push(ev)
		}
		e.Finish()
		return
	}
	if e.fabric != nil {
		for _, ev := range s {
			e.fanout(ev)
		}
		for _, ch := range e.chainsSnapshot() {
			ch.finish()
		}
		return
	}
	chains := e.chainsSnapshot()
	for _, ev := range s {
		for _, ch := range chains {
			ch.push(ev)
		}
	}
	for _, ch := range chains {
		ch.finish()
	}
}

// chain is one executing operator pipeline — a chain of consistency
// monitors, or the sharded parallel runtime behind a deterministic merge —
// fanning its output out to the attached query endpoints. A private chain
// has exactly one endpoint for its whole life; a shared chain (key != "")
// gains and loses endpoints as identical plans register and unregister.
type chain struct {
	name     string // name of the first registrant, for quarantine errors
	plan     *plan.Plan
	monitors []*consistency.Monitor
	sh       *sharded
	shards   int
	eng      *Engine
	key      string // sharing identity ("" = private, never joined)

	mu       sync.Mutex
	finished bool
	closed   bool  // engine shutdown or last-endpoint teardown: delivery muted
	err      error // chain-level quarantine: operator stage or shard worker panic
	live     int   // healthy endpoints; at 0 the chain stops consuming input
	fan      consistency.Fanout

	// batchA/batchB are the double-buffered inter-stage batches reused by
	// push and finish, so driving the chain allocates nothing per event.
	batchA, batchB []event.Event
}

// attach adds q as an endpoint. The endpoint's failure handler runs on the
// delivery path under ch.mu: a panicking subscriber callback quarantines
// the endpoint alone — sibling endpoints on the same chain keep receiving.
func (ch *chain) attach(q *Query) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	q.ep = ch.fan.Attach(q.endpointDeliver, func(r any) {
		ch.live--
		q.quarantine(recoverPanic(q.name, "subscriber callback", r))
	})
	ch.live++
}

// detach removes q's endpoint and reports whether the chain is now
// unreferenced (no endpoints at all — dead ones still count as references
// until their queries unregister). Caller holds e.mu.
func (ch *chain) detach(q *Query) bool {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if q.ep == nil {
		return ch.fan.Len() == 0
	}
	if !q.ep.Dead() {
		ch.live--
	}
	ch.fan.Detach(q.ep)
	q.ep = nil
	return ch.fan.Len() == 0
}

// push feeds one physical item through the pipeline, delivering any final-
// stage output to the endpoints, and returns that output (nil on sharded
// chains, which enqueue asynchronously). The returned slice is reused by
// the next push; callers must copy what they keep.
func (ch *chain) push(ev event.Event) []event.Event {
	if ch.sh != nil {
		ch.mu.Lock()
		dead := ch.err != nil || ch.closed || ch.live == 0
		ch.mu.Unlock()
		if !dead {
			ch.sh.push(ev)
		}
		return nil
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.finished || ch.err != nil || ch.live == 0 {
		return nil
	}
	// The monitor chain runs under a recover barrier: a panicking operator
	// quarantines this chain (every endpoint's Err) instead of killing the
	// process, and sibling chains sharing the engine keep running.
	defer func() {
		if r := recover(); r != nil {
			ch.quarantineLocked(recoverPanic(ch.name, "operator stage", r))
		}
	}()
	batch := append(ch.batchA[:0], ev)
	next := ch.batchB[:0]
	for _, m := range ch.monitors {
		next = next[:0]
		for _, item := range batch {
			next = append(next, m.Push(0, item)...)
		}
		batch, next = next, batch
		if len(batch) == 0 {
			ch.batchA, ch.batchB = batch, next
			return nil
		}
	}
	ch.batchA, ch.batchB = batch, next
	ch.deliverLocked(batch)
	return batch
}

// finish flushes the pipeline and closes it: each stage's Finish output
// cascades through the remaining stages, and subsequent pushes are dropped.
// On a sharded chain it drains every shard and the merge stage before
// returning the merged finish outputs.
func (ch *chain) finish() []event.Event {
	if ch.sh != nil {
		return ch.sh.finish()
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.finished || ch.err != nil {
		return nil
	}
	ch.finished = true
	defer func() {
		if r := recover(); r != nil {
			ch.quarantineLocked(recoverPanic(ch.name, "operator stage", r))
		}
	}()
	var final []event.Event
	for i := range ch.monitors {
		batch := ch.monitors[i].Finish()
		for j := i + 1; j < len(ch.monitors); j++ {
			var next []event.Event
			for _, item := range batch {
				next = append(next, ch.monitors[j].Push(0, item)...)
			}
			batch = next
		}
		final = append(final, batch...)
	}
	ch.deliverLocked(final)
	return final
}

// deliverLocked fans one output batch out to the endpoints. Caller holds
// ch.mu. A closed chain discards late output; a chain-quarantined one has
// stopped emitting (each endpoint's results up to the failure stay
// readable).
func (ch *chain) deliverLocked(items []event.Event) {
	if ch.closed || ch.err != nil || len(items) == 0 {
		return
	}
	ch.fan.Deliver(items)
}

// deliverMerged is the sharded runtime's delivery callback; it runs on the
// merger goroutine (subscriber callbacks therefore run there too).
func (ch *chain) deliverMerged(items []event.Event) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.deliverLocked(items)
}

// quarantine records a chain-level failure (operator stage or shard
// worker): every endpoint of the chain fails together. The first error
// wins; later ones (cascading noise from an already-broken pipeline) are
// dropped.
func (ch *chain) quarantine(err error) {
	ch.mu.Lock()
	ch.quarantineLocked(err)
	ch.mu.Unlock()
}

// quarantineLocked is quarantine for callers already holding ch.mu.
func (ch *chain) quarantineLocked(err error) {
	if ch.err == nil {
		ch.err = err
	}
}

// Err returns the chain-level quarantine error, if any.
func (ch *chain) Err() error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.err
}

// metrics returns per-stage monitor metrics (see Query.Metrics).
func (ch *chain) metrics() []consistency.Metrics {
	if ch.sh != nil {
		return ch.sh.metrics()
	}
	out := make([]consistency.Metrics, len(ch.monitors))
	for i, m := range ch.monitors {
		out[i] = m.Metrics()
	}
	return out
}

// setSpecApply switches the chain's consistency level without durable
// logging (the replay path applies already-logged records through it).
func (ch *chain) setSpecApply(s consistency.Spec) {
	if ch.sh != nil {
		ch.sh.setSpec(s)
		return
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.finished || ch.err != nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			ch.quarantineLocked(recoverPanic(ch.name, "operator stage", r))
		}
	}()
	for i, m := range ch.monitors {
		batch := m.SetSpec(s)
		for j := i + 1; j < len(ch.monitors); j++ {
			var next []event.Event
			for _, item := range batch {
				next = append(next, ch.monitors[j].Push(0, item)...)
			}
			batch = next
		}
		ch.deliverLocked(batch)
	}
}

// drain waits until a sharded chain has processed and delivered everything
// enqueued so far; a no-op on single-shard chains, which are synchronous.
func (ch *chain) drain() {
	if ch.sh != nil {
		ch.sh.barrier()
	}
}

// shutdown closes the chain without emitting finish outputs: subsequent
// input is dropped and delivery is muted, then the sharded runtime (if
// any) is drained so its workers and merger exit. Used by engine shutdown
// and by the last endpoint's Unregister.
func (ch *chain) shutdown() {
	ch.mu.Lock()
	ch.finished = true
	ch.closed = true
	ch.mu.Unlock()
	if ch.sh != nil {
		ch.sh.finish()
	}
}

// Query is one registered standing query: an endpoint of an executing
// chain. On a private chain the query is the chain's only consumer; on a
// shared chain it is one of N endpoints receiving the same output
// sequence. Results, subscriber callbacks, order tags, and subscriber-
// panic quarantine are per-endpoint; Push, Finish, SetSpec, and Metrics
// address the underlying chain (on a shared chain they affect the whole
// group — documented on each method).
type Query struct {
	name   string
	eng    *Engine // owning engine, for durable logging and unregistration
	ch     *chain
	idx    int  // position in the engine's registration list (the WAL's query id)
	nonDur bool // registration bypassed the WAL (plan had no source text)

	mu           sync.Mutex
	unregistered bool
	err          error // endpoint quarantine: this query's subscriber panicked
	results      stream.Stream
	tags         []uint64 // chain order tag of each results[i]
	subs         []func(event.Event)
	tsubs        []func(event.Event, uint64)
	ep           *consistency.Endpoint
}

// Err returns the error that quarantined the query: the recovered panic of
// this query's subscriber callback (endpoint-level — siblings sharing the
// chain are unaffected), or of an operator stage or shard worker (chain-
// level — every query on the chain reports it). A quarantined query stops
// accumulating output, but its results up to the failure remain readable;
// queries on other chains are unaffected. Err is nil while the query is
// healthy.
func (q *Query) Err() error {
	q.mu.Lock()
	err := q.err
	q.mu.Unlock()
	if err != nil {
		return err
	}
	return q.ch.Err()
}

// quarantine records the endpoint failure. The first error wins.
func (q *Query) quarantine(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
}

// recoverPanic converts a recovered panic value into the quarantine error.
func recoverPanic(name, where string, r any) error {
	return fmt.Errorf("engine: query %s quarantined: %s panicked: %v\n%s", name, where, r, debug.Stack())
}

// endpointDeliver is the query's Fanout callback: it records the batch and
// its chain order tags and runs the subscriber callbacks. It runs under
// ch.mu (and takes q.mu), on the pushing goroutine for single-shard chains
// and on the merger goroutine for sharded ones. A subscriber panic unwinds
// out of here into the Fanout's recover barrier, which quarantines this
// endpoint only; the batch items appended before the panic stay recorded.
func (q *Query) endpointDeliver(items []event.Event, firstTag uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil || q.unregistered {
		return
	}
	q.results = append(q.results, items...)
	for i := range items {
		q.tags = append(q.tags, firstTag+uint64(i))
	}
	for _, fn := range q.subs {
		for _, it := range items {
			fn(it)
		}
	}
	for _, fn := range q.tsubs {
		for i, it := range items {
			fn(it, firstTag+uint64(i))
		}
	}
}

// Name returns the query's registered name.
func (q *Query) Name() string { return q.name }

// Plan returns the compiled plan the query's chain executes.
func (q *Query) Plan() *plan.Plan { return q.ch.plan }

// Shards returns the number of parallel shards the query's chain runs on
// (1 for single-shard execution).
func (q *Query) Shards() int { return q.ch.shards }

// Shared reports whether the query's chain is joinable by identical
// registrations (it may still have only one endpoint).
func (q *Query) Shared() bool { return q.ch.key != "" }

// Subscribe adds a callback invoked for every output item (including
// punctuation) delivered to this endpoint. Callbacks run synchronously on
// the delivering goroutine. A callback added after the chain has already
// emitted output sees only subsequent output.
func (q *Query) Subscribe(fn func(event.Event)) {
	q.mu.Lock()
	q.subs = append(q.subs, fn)
	q.mu.Unlock()
}

// SubscribeTagged adds a callback invoked for every output item delivered
// to this endpoint together with the item's chain order tag. With replay
// set, the callback first receives everything the endpoint has already
// accumulated — atomically with the registration, so the combined sequence
// is exactly the endpoint's output from its attachment point, with no gap
// or duplication against concurrent delivery. The network server uses this
// to frame a remote subscriber's stream identically to an in-process one.
func (q *Query) SubscribeTagged(replay bool, fn func(event.Event, uint64)) {
	q.mu.Lock()
	if replay {
		for i, e := range q.results {
			fn(e, q.tags[i])
		}
	}
	q.tsubs = append(q.tsubs, fn)
	q.mu.Unlock()
}

// Push feeds one physical item through the query's chain and returns the
// final-stage outputs. On a shared chain the item is processed once and
// every endpoint observes the output. The returned slice is reused by the
// next Push on this chain; callers must copy what they keep.
//
// On a sharded query Push only enqueues (shards run asynchronously) and
// returns nil; merged output reaches Results and subscribers in
// deterministic order as the shards drain.
//
// Finish closes the query: items pushed afterwards are dropped, on every
// execution mode.
func (q *Query) Push(ev event.Event) []event.Event {
	return q.ch.push(ev)
}

// Finish flushes the query's chain and closes it (on a shared chain, for
// every endpoint). See chain.finish.
func (q *Query) Finish() []event.Event {
	return q.ch.finish()
}

// Results returns everything delivered to this endpoint so far (data and
// punctuation), in emission order.
func (q *Query) Results() stream.Stream {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append(stream.Stream(nil), q.results...)
}

// Tags returns the chain output position of each Results item: Tags()[i]
// is the cumulative index the chain assigned to Results()[i]. On an
// endpoint attached at registration the tags are 0,1,2,…; an endpoint
// attached to a warm shared chain starts at the chain's position at attach
// time. An independently-executed copy of the same plan over the same
// input assigns the same positions — the fabric's order-identity witness.
func (q *Query) Tags() []uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]uint64(nil), q.tags...)
}

// Metrics returns per-stage monitor metrics of the query's chain (shared
// endpoints observe identical metrics). On a sharded query it waits for
// the shards to drain everything pushed so far, then combines the
// per-shard counters into the single-shard equivalents (callers must not
// Push concurrently). Combined counters and the head stage's state axes
// match single-shard execution exactly; downstream stages' MaxState is
// sampled once per input item and may under-read momentary intra-item
// peaks a single-shard run would catch.
func (q *Query) Metrics() []consistency.Metrics {
	return q.ch.metrics()
}

// SetSpec switches the query's consistency level at runtime (Section 5's
// consistency-sensitive adaptation); released buffered output cascades
// through the chain. On a shared chain the switch applies to the whole
// group — every endpoint observes the released output. On a sharded query
// the switch is enqueued and takes effect at this position in the input
// sequence on every shard.
func (q *Query) SetSpec(s consistency.Spec) {
	if e := q.eng; e != nil && e.log != nil {
		e.pushMu.Lock()
		defer e.pushMu.Unlock()
		if !e.replaying && !e.logAppend(wal.Record{Kind: wal.KindSpec, Query: q.idx, Spec: s}) {
			return
		}
	}
	q.setSpecApply(s)
}

// setSpecApply performs the switch without durable logging (the replay
// path applies already-logged records through it).
func (q *Query) setSpecApply(s consistency.Spec) {
	q.ch.setSpecApply(s)
}

// Unregister removes the standing query. The endpoint detaches — its
// accumulated Results stay readable, subscribers receive nothing further —
// and when it was the chain's last reference the chain itself is torn
// down: input is no longer delivered to it and the sharded runtime's
// goroutines exit. On a shared chain with remaining endpoints execution
// continues undisturbed. On a durable engine the unregistration is logged
// ahead of taking effect, so recovery reproduces it at the same position
// in the input sequence. Idempotent.
func (q *Query) Unregister() {
	e := q.eng
	if e != nil && e.log != nil {
		e.pushMu.Lock()
		defer e.pushMu.Unlock()
		if !e.replaying && !q.nonDur {
			if !e.logAppend(wal.Record{Kind: wal.KindUnregister, Query: q.idx}) {
				return
			}
		}
	}
	q.unregisterApply()
}

// unregisterApply detaches the endpoint without durable logging (the
// replay path applies already-logged records through it), tearing the
// chain down when the last reference goes.
func (q *Query) unregisterApply() {
	e := q.eng
	e.mu.Lock()
	q.mu.Lock()
	already := q.unregistered
	q.unregistered = true
	q.mu.Unlock()
	if already {
		e.mu.Unlock()
		return
	}
	if q.nonDur {
		// Release this registration's snapshot refusal.
		for i, name := range e.nonDur {
			if name == q.name {
				e.nonDur = append(e.nonDur[:i], e.nonDur[i+1:]...)
				break
			}
		}
	}
	ch := q.ch
	last := ch.detach(q)
	if last {
		for i, c := range e.chains {
			if c == ch {
				// Copy-on-write removal: in-flight Push snapshots keep their
				// (stale but consistent) list; the three-index slice forces a
				// fresh backing array.
				e.chains = append(e.chains[:i:i], e.chains[i+1:]...)
				break
			}
		}
		if ch.key != "" {
			delete(e.groups, ch.key)
		}
		if e.fabric != nil {
			e.fabric.remove(ch)
		}
	}
	e.mu.Unlock()
	if last {
		ch.shutdown()
	}
}

// RunPipelined executes the query over a finite source as a goroutine-per-
// stage pipeline connected by channels — the paper's pipelined execution
// plan — and returns the collected output. The query must be freshly
// registered (no interleaved Push use). A sharded query is already a
// goroutine pipeline (worker-per-shard plus a merger); there the source is
// streamed through the shard router and the merged output returned.
func (q *Query) RunPipelined(src stream.Stream, buf int) stream.Stream {
	ch := q.ch
	if ch.sh != nil {
		for _, ev := range src {
			ch.sh.push(ev)
		}
		ch.sh.finish()
		return q.Results()
	}
	if buf <= 0 {
		buf = 64
	}
	in := src.Chan(buf)
	for _, m := range ch.monitors {
		m := m
		out := make(chan event.Event, buf)
		go func(in <-chan event.Event, out chan<- event.Event) {
			defer close(out)
			// A panicking stage quarantines the chain and drains its input
			// so upstream stages don't block on a full channel.
			defer func() {
				if r := recover(); r != nil {
					ch.quarantine(recoverPanic(ch.name, "pipelined stage", r))
					for range in {
					}
				}
			}()
			for ev := range in {
				for _, o := range m.Push(0, ev) {
					out <- o
				}
			}
			for _, o := range m.Finish() {
				out <- o
			}
		}(in, out)
		in = out
	}
	results := stream.Collect(in)
	ch.mu.Lock()
	ch.deliverLocked(results)
	ch.mu.Unlock()
	return results
}

// String implements fmt.Stringer.
func (q *Query) String() string {
	if q.ch.shards > 1 {
		return fmt.Sprintf("query %s: %s × %d shards", q.name, q.ch.plan.Spec.Name(), q.ch.shards)
	}
	return fmt.Sprintf("query %s: %s", q.name, q.ch.plan.Spec.Name())
}
