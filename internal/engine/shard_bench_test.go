package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/operators"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/workload"
)

// BenchmarkShardCriticalPath measures the sharded runtime's critical path:
// each shard's full item sequence (its own events, advance probes for the
// rest, broadcast punctuation) is driven synchronously and timed, and
// events/s is reported against the slowest shard. This is the projected
// k-core throughput of the parallel runtime with the channel plumbing
// factored out — the measurement that stays meaningful on single-core CI
// hosts, where BenchmarkMonitorScalingSharded (the real end-to-end number)
// can only show the runtime's overhead, never its parallelism.
func BenchmarkShardCriticalPath(b *testing.B) {
	cfg := workload.DefaultUniform()
	cfg.Events = 4000
	cfg.Groups = 64
	src := workload.UniformEvents(cfg)
	for _, stragglers := range []float64{0, 0.1} {
		var dcfg delivery.Config
		if stragglers == 0 {
			dcfg = delivery.Ordered(20 * temporal.Duration(cfg.Spacing))
		} else {
			dcfg = delivery.Disordered(cfg.Seed, 100*temporal.Duration(cfg.Spacing),
				30*temporal.Duration(cfg.Spacing), stragglers)
		}
		delivered := delivery.Deliver(src, dcfg)
		for _, shards := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("stragglers=%d%%/middle/shards=%d", int(stragglers*100), shards)
			b.Run(name, func(b *testing.B) {
				perShard := shardItemSequences(delivered, shards, RouteByAttr("g", shards))
				b.ResetTimer()
				var worst time.Duration
				for i := 0; i < b.N; i++ {
					var slowest time.Duration
					for s := 0; s < shards; s++ {
						w := benchWorker()
						var burst shardBurst
						start := time.Now()
						for seq, it := range perShard[s] {
							// Reset at run boundaries, as the worker loop
							// does per handoff.
							if seq%DefaultBurst == 0 {
								burst.reset()
							}
							w.process(seq, it, &burst)
						}
						if d := time.Since(start); d > slowest {
							slowest = d
						}
					}
					worst += slowest
				}
				b.ReportMetric(float64(len(delivered))*float64(b.N)/worst.Seconds(), "events/s")
			})
		}
	}
}

// benchWorker builds a single-stage worker for synchronous driving (no
// channels or free lists).
func benchWorker() *shardWorker {
	w := &shardWorker{monitors: []*consistency.Monitor{
		consistency.NewMonitor(operators.NewAggregate(operators.Count, "", "g"), consistency.Middle()),
	}}
	w.mid = []*consistency.Burst{new(consistency.Burst)}
	w.arrScratch = make([][]byte, 1)
	return w
}

// shardItemSequences precomputes, per shard, the exact item sequence the
// router would deliver; item k carries global sequence number k on every
// shard.
func shardItemSequences(in stream.Stream, shards int, route func(event.Event) int) [][]shardItem {
	out := make([][]shardItem, shards)
	for _, ev := range in {
		if ev.IsCTI() {
			for s := 0; s < shards; s++ {
				out[s] = append(out[s], shardItem{kind: itemCTI, ev: ev})
			}
			continue
		}
		owner := route(ev)
		probe := event.Event{V: temporal.From(ev.Sync()), C: ev.C}
		for s := 0; s < shards; s++ {
			if s == owner {
				out[s] = append(out[s], shardItem{kind: itemData, ev: ev})
			} else {
				out[s] = append(out[s], shardItem{kind: itemProbe, ev: probe})
			}
		}
	}
	fin := shardItem{kind: itemFinish}
	for s := 0; s < shards; s++ {
		out[s] = append(out[s], fin)
	}
	return out
}

// BenchmarkShardMergeStage isolates the merge stage's own cost: the tagged
// bursts of a sharded run are captured once, then replayed through the
// Merger's per-item burst merge.
func BenchmarkShardMergeStage(b *testing.B) {
	cfg := workload.DefaultUniform()
	cfg.Events = 4000
	cfg.Groups = 64
	delivered := delivery.Deliver(workload.UniformEvents(cfg),
		delivery.Disordered(cfg.Seed, 100*temporal.Duration(cfg.Spacing),
			30*temporal.Duration(cfg.Spacing), 0.1))
	const shards = 4
	perShard := shardItemSequences(delivered, shards, RouteByAttr("g", shards))
	items := len(perShard[0])
	// Per shard, one unbounded burst covering the whole sequence; ends
	// gives the per-item slices the merger consumes.
	full := make([]*shardBurst, shards)
	for s := 0; s < shards; s++ {
		w := benchWorker()
		full[s] = new(shardBurst)
		for seq, it := range perShard[s] {
			w.process(seq, it, full[s])
		}
	}
	evs := make([][]event.Event, shards)
	tags := make([][][]byte, shards)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var mg delivery.Merger
		var out []event.Event
		total := 0
		for k := 0; k < items; k++ {
			for s, fb := range full {
				start := 0
				if k > 0 {
					start = int(fb.ends[k-1])
				}
				end := int(fb.ends[k])
				evs[s] = fb.out.Evs[start:end]
				tags[s] = fb.out.Tags[start:end]
			}
			out = mg.MergeTagged(out[:0], evs, tags)
			total += len(out)
		}
		if total == 0 {
			b.Fatal("no output")
		}
	}
	b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
