// Crash-safety differentials: the engine is killed at every WAL record
// boundary (and inside records, for torn tails) of a CIDR07 workload, the
// survivor is recovered, the lost suffix re-sent, and the recovered output
// history — inserts, retractions, punctuation, metrics — must be
// byte-identical to the uninterrupted oracle run. Runs under -race in the
// dedicated CI fault-injection job.
package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/wal"
	"repro/internal/workload"
)

// durabilityWorkload is a small disordered machine-lifecycle stream — big
// enough to exercise blocking, repair, and retraction; small enough that
// crashing at every record boundary stays fast.
func durabilityWorkload() stream.Stream {
	src, _ := workload.MachineEvents(workload.Machines{
		Seed:            7,
		Machines:        4,
		Cycles:          2,
		RestartDeadline: 5 * temporal.Minute,
		MissProb:        0.5,
		CycleGap:        30 * temporal.Minute,
	})
	return delivery.Deliver(src, delivery.Disordered(7, temporal.Minute, 10*temporal.Minute, 0.2))
}

// driveOracle runs the uninterrupted durable reference: register, push the
// first third, switch to strong consistency, push the second third, switch
// back to middle, push the rest, finish.
func driveOracle(t *testing.T, e *Engine, shards int, in stream.Stream) *Query {
	t.Helper()
	q, err := e.RegisterText(monitorQuery, plan.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range in {
		if i == len(in)/3 {
			q.SetSpec(consistency.Strong())
		}
		if i == 2*len(in)/3 {
			q.SetSpec(consistency.Middle())
		}
		e.Push(ev)
	}
	e.Finish()
	return q
}

// redrive re-sends lost records through the engine's public API, playing
// the role of the upstream client that resends unacknowledged input after
// a crash.
func redrive(t *testing.T, e *Engine, recs []wal.Record) {
	t.Helper()
	for _, rec := range recs {
		switch rec.Kind {
		case wal.KindEvent, wal.KindCTI:
			e.Push(rec.Ev)
		case wal.KindRegister:
			d := plan.Durable{
				Src:              rec.Src,
				HasSpec:          rec.Opts.HasSpec,
				Spec:             rec.Opts.Spec,
				Shards:           rec.Opts.Shards,
				NoSpecialization: rec.Opts.NoSpecialization,
				NoPushdown:       rec.Opts.NoPushdown,
			}
			p, err := plan.Compile(d.Src, d.Options()...)
			if err != nil {
				t.Fatal(err)
			}
			e.Register(p)
		case wal.KindSpec:
			e.Queries()[rec.Query].SetSpec(rec.Spec)
		case wal.KindFinish:
			e.Finish()
		default:
			t.Fatalf("unexpected record kind %v", rec.Kind)
		}
	}
}

// TestCrashRecoveryAtEveryRecordBoundary is the crash-point differential:
// for shard counts 1 and 4, the oracle's WAL is cut at every record
// boundary — plus a torn cut inside every record — and each survivor is
// recovered and driven to completion. Every recovered history must equal
// the oracle's byte for byte.
func TestCrashRecoveryAtEveryRecordBoundary(t *testing.T) {
	in := durabilityWorkload()
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			defer leakcheck.Check(t)()
			dir := t.TempDir()
			oraclePath := filepath.Join(dir, "oracle.wal")
			log, err := wal.Open(oraclePath, wal.SyncEvery(1))
			if err != nil {
				t.Fatal(err)
			}
			e, err := Restore(nil, log)
			if err != nil {
				t.Fatal(err)
			}
			q := driveOracle(t, e, shards, in)
			wantResults := q.Results()
			wantMetrics := q.Metrics()
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if len(wantResults) == 0 {
				t.Fatal("oracle produced no output; the differential would be vacuous")
			}

			img, err := os.ReadFile(oraclePath)
			if err != nil {
				t.Fatal(err)
			}
			records, good, err := wal.ReadAll(bytes.NewReader(img))
			if err != nil {
				t.Fatal(err)
			}
			if good != int64(len(img)) {
				t.Fatalf("oracle WAL has a %d-byte tail past the last record", int64(len(img))-good)
			}
			var cuts []int64
			if _, err := wal.Scan(bytes.NewReader(img), func(_ wal.Record, start, end int64) error {
				// Crash exactly at the boundary before this record, and torn
				// three bytes into its frame.
				cuts = append(cuts, start, start+3)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			cuts = append(cuts, int64(len(img))) // crash after the final record

			crashPath := filepath.Join(dir, "crash.wal")
			for _, cut := range cuts {
				if err := os.WriteFile(crashPath, img[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				log2, err := wal.Open(crashPath, wal.SyncEvery(1))
				if err != nil {
					t.Fatalf("cut=%d: reopen: %v", cut, err)
				}
				survived := len(log2.Recovered())
				e2, err := Restore(nil, log2)
				if err != nil {
					t.Fatalf("cut=%d: restore: %v", cut, err)
				}
				redrive(t, e2, records[survived:])
				q2s := e2.Queries()
				if len(q2s) != 1 {
					t.Fatalf("cut=%d: recovered %d queries, want 1", cut, len(q2s))
				}
				compareStreams(t, fmt.Sprintf("cut=%d results", cut), q2s[0].Results(), wantResults)
				if got := q2s[0].Metrics(); !reflect.DeepEqual(got, wantMetrics) {
					t.Fatalf("cut=%d: metrics diverge:\n got %+v\nwant %+v", cut, got, wantMetrics)
				}
				if err := e2.Close(); err != nil {
					t.Fatalf("cut=%d: close: %v", cut, err)
				}
			}
		})
	}
}

// TestSnapshotRestoreRotation: a snapshot taken mid-stream restores (a)
// against a fresh empty log — WAL rotation — with the remaining input
// re-driven, and (b) against the original full log, where replay resumes
// from the watermark with nothing re-sent. Both must reproduce the oracle
// byte for byte.
func TestSnapshotRestoreRotation(t *testing.T) {
	defer leakcheck.Check(t)()
	in := durabilityWorkload()
	half := len(in) / 2
	dir := t.TempDir()

	log1, err := wal.Open(filepath.Join(dir, "full.wal"), wal.SyncEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Restore(nil, log1)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := e1.RegisterText(monitorQuery, plan.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range in[:half] {
		e1.Push(ev)
	}
	var snap bytes.Buffer
	if err := e1.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	q1.drainShards() // sharded delivery is asynchronous; settle before reading
	midResults := q1.Results()
	for _, ev := range in[half:] {
		e1.Push(ev)
	}
	e1.Finish()
	wantResults := q1.Results()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// (a) Rotation: snapshot + fresh empty log; the client re-sends the
	// input that postdates the snapshot.
	log2, err := wal.Open(filepath.Join(dir, "rotated.wal"), wal.SyncEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(bytes.NewReader(snap.Bytes()), log2)
	if err != nil {
		t.Fatal(err)
	}
	q2 := e2.Queries()[0]
	compareStreams(t, "post-snapshot restore", q2.Results(), midResults)
	for _, ev := range in[half:] {
		e2.Push(ev)
	}
	e2.Finish()
	compareStreams(t, "rotated results", q2.Results(), wantResults)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// (b) Snapshot + the original log: records at or before the watermark
	// are skipped, the rest replay from the log.
	log3, err := wal.Open(filepath.Join(dir, "full.wal"))
	if err != nil {
		t.Fatal(err)
	}
	e3, err := Restore(bytes.NewReader(snap.Bytes()), log3)
	if err != nil {
		t.Fatal(err)
	}
	q3 := e3.Queries()[0]
	e3.Finish() // the oracle finished after its last logged record
	compareStreams(t, "snapshot+log results", q3.Results(), wantResults)
	if err := e3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRefusals: snapshots require a durable engine and refuse
// while a hand-built (source-less) plan is registered, and a corrupt
// snapshot is a hard restore error rather than a silent partial replay.
func TestSnapshotRefusals(t *testing.T) {
	defer leakcheck.Check(t)()
	var buf bytes.Buffer
	if err := New().Snapshot(&buf); err == nil {
		t.Fatal("snapshot of a non-durable engine succeeded")
	}

	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := Restore(nil, log)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Hand-built plan: compiled stages but no source text.
	hp, err := plan.Compile(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	bare := &plan.Plan{Name: "bare", Stages: hp.Stages, Spec: hp.Spec}
	e.Register(bare)
	if err := e.Snapshot(&buf); err == nil {
		t.Fatal("snapshot succeeded with a source-less plan registered")
	}

	// Corrupt snapshot → hard error.
	log2, err := wal.Open(filepath.Join(dir, "wal2"))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(nil, log2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RegisterText(monitorQuery); err != nil {
		t.Fatal(err)
	}
	e2.Push(event.NewCTI(1))
	var snap bytes.Buffer
	if err := e2.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	bad := faultinject.FlipByte(snap.Bytes(), int64(snap.Len()-2))
	log3, err := wal.Open(filepath.Join(dir, "wal3"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader(bad), log3); err == nil {
		t.Fatal("restore from corrupt snapshot succeeded")
	}
	log3.Close()
	torn := faultinject.TornTail(snap.Bytes(), 2)
	log4, err := wal.Open(filepath.Join(dir, "wal4"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader(torn), log4); err == nil {
		t.Fatal("restore from torn snapshot succeeded")
	}
	log4.Close()
}

// TestEngineFailStopOnFsyncError: after an injected fsync failure the
// engine reports the error and refuses further input — events that cannot
// be made durable are never processed.
func TestEngineFailStopOnFsyncError(t *testing.T) {
	defer leakcheck.Check(t)()
	f, err := os.Create(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	ff := faultinject.NewFile(f)
	ff.FailSyncAt = 2 // sync 1 covers the registration; fail the first event
	log, err := wal.New(ff, wal.SyncEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := Restore(nil, log)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.RegisterText(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	if e.Err() != nil {
		t.Fatalf("premature failure: %v", e.Err())
	}
	in := durabilityWorkload()
	for _, ev := range in {
		e.Push(ev)
	}
	e.Finish()
	if e.Err() == nil {
		t.Fatal("engine reports no error after fsync failure")
	}
	if got := q.Results(); len(got) != 0 {
		t.Fatalf("%d results emitted from input that was never durable", len(got))
	}
	if err := e.Close(); err == nil {
		t.Fatal("Close cleared the sticky durability error")
	}
	if err := e.Close(); err == nil {
		t.Fatal("second Close cleared the sticky durability error")
	}
}

// TestCrashDuringAppend drives a wal.Log over a crash-at-offset file: the
// torn write reaches the disk, recovery truncates it, and replay of the
// durable prefix matches an uninterrupted run over that prefix.
func TestCrashDuringAppend(t *testing.T) {
	defer leakcheck.Check(t)()
	in := durabilityWorkload()
	path := filepath.Join(t.TempDir(), "wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ff := faultinject.NewFile(f)
	ff.CrashAtByte = 900
	log, err := wal.New(ff, wal.SyncEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := Restore(nil, log)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterText(monitorQuery); err != nil {
		t.Fatal(err)
	}
	for _, ev := range in {
		e.Push(ev) // the append past byte 900 crashes; later pushes drop
	}
	if e.Err() == nil {
		t.Fatal("crash not surfaced")
	}
	e.Close()

	// Recover the torn file.
	log2, err := wal.Open(path, wal.SyncEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	durable := append([]wal.Record(nil), log2.Recovered()...)
	if len(durable) == 0 {
		t.Fatal("nothing durable before the crash point")
	}
	e2, err := Restore(nil, log2)
	if err != nil {
		t.Fatal(err)
	}
	got := e2.Queries()[0].Results()
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// Oracle over exactly the durable prefix.
	oe := New()
	var oq *Query
	for _, rec := range durable {
		switch rec.Kind {
		case wal.KindRegister:
			if oq, err = oe.RegisterText(rec.Src); err != nil {
				t.Fatal(err)
			}
		case wal.KindEvent, wal.KindCTI:
			oe.Push(rec.Ev)
		}
	}
	compareStreams(t, "durable prefix replay", got, oq.Results())
}
