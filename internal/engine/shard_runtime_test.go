// Runtime-shape tests for the batched sharded runtime: the auto-shard
// heuristic's decision table, the alloc-free steady-state handoff
// guarantee, and a true multi-core smoke run (raised GOMAXPROCS, race-
// checked in CI's fault-injection job).
package engine

import (
	"runtime"
	"testing"

	"repro/internal/consistency"
	"repro/internal/delivery"
	"repro/internal/event"
	"repro/internal/leakcheck"
	"repro/internal/operators"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/workload"
)

// TestAutoShardHeuristic pins the WithShards(AutoShards) decision table:
// non-partitionable and cheap plans never shard, a single-core process
// never shards, and a heavy partitionable plan gets its cost-amortized
// width clamped to the cores actually available.
func TestAutoShardHeuristic(t *testing.T) {
	heavy, err := plan.Compile(monitorQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !heavy.Part.OK() || heavy.CostNs() < 2*shardTaxNs {
		t.Fatalf("fixture drifted: monitorQuery part=%v cost=%d", heavy.Part, heavy.CostNs())
	}
	flat, err := plan.Compile(`EVENT Seq WHEN SEQUENCE(A a, B b, 10)`)
	if err != nil {
		t.Fatal(err)
	}
	cheap := &plan.Plan{
		Name:   "cheap",
		Stages: []operators.Op{operators.NewAggregate(operators.Count, "", "g")},
		Spec:   consistency.Middle(),
		Part:   plan.Partition{Mode: plan.PartitionByAttr, Attr: "g"},
	}
	if cheap.CostNs() >= 2*shardTaxNs {
		t.Fatalf("fixture drifted: cheap plan costs %d", cheap.CostNs())
	}

	// The single-core branch is reachable on any host by narrowing
	// GOMAXPROCS: even the heavy plan must refuse to shard.
	prev := runtime.GOMAXPROCS(1)
	if got := autoShards(heavy); got != 1 {
		runtime.GOMAXPROCS(prev)
		t.Fatalf("heavy plan on 1 core: %d shards, want 1", got)
	}
	runtime.GOMAXPROCS(prev)

	// The remaining rows depend on the live core count the same way
	// production resolution does.
	cores := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < cores {
		cores = c
	}
	want := heavy.CostNs() / shardTaxNs
	if want > cores {
		want = cores
	}
	if want > maxAutoShards {
		want = maxAutoShards
	}
	if cores < 2 {
		want = 1
	}
	if got := autoShards(heavy); got != want {
		t.Fatalf("heavy plan on %d cores: %d shards, want %d", cores, got, want)
	}
	if cores >= 2 && want < 2 {
		t.Fatalf("heavy plan failed to earn a second shard on %d cores", cores)
	}
	if got := autoShards(flat); got != 1 {
		t.Fatalf("non-partitionable plan: %d shards, want 1", got)
	}
	if got := autoShards(cheap); got != 1 {
		t.Fatalf("cheap plan: %d shards, want 1", got)
	}

	// Registration-level wiring: AutoShards resolves to the same verdict.
	e := New()
	defer e.Close()
	q, err := e.RegisterText(monitorQuery, plan.WithShards(plan.AutoShards))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Shards(); got != want {
		t.Fatalf("AutoShards registration: %d shards, want %d", got, want)
	}
}

// TestShardedHandoffAllocFree pins the batched handoff's steady state at
// zero allocations per run: once the free-list buffers have cycled and the
// monitor log has grown its capacity, routing a full burst of data plus
// its CTI through router → workers → merger must not allocate. A
// never-matching Select keeps output out of the measurement, so the number
// is the handoff machinery alone.
func TestShardedHandoffAllocFree(t *testing.T) {
	defer leakcheck.Check(t)()
	const (
		shards = 4
		burst  = 8
	)
	sh, err := newSharded(shards, burst,
		func(int) ([]operators.Op, error) {
			return []operators.Op{operators.NewSelect(func(event.Payload) bool { return false })}, nil
		},
		consistency.Middle(), RouteByAttr("g", shards),
		func([]event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.Uniform{Seed: 9, Events: 4096, Groups: 8, Spacing: 4, Lifetime: 10}
	in := delivery.Deliver(workload.UniformEvents(cfg), delivery.Ordered(8))
	var data stream.Stream
	for _, ev := range in {
		if !ev.IsCTI() {
			data = append(data, ev)
		}
	}
	if len(data) < 2048 {
		t.Fatalf("workload too small: %d data events", len(data))
	}
	// Warmup: cycle every run/burst buffer several times and let the
	// monitor logs reach their steady capacity.
	next := 0
	feed := func(n int) {
		for i := 0; i < n; i++ {
			sh.push(data[next%len(data)])
			next++
		}
	}
	feed(1024)
	cti := event.NewCTI(data[len(data)-1].Sync())
	sh.push(cti)

	allocs := testing.AllocsPerRun(100, func() {
		feed(shards * burst)
		sh.push(cti)
	})
	sh.finish()
	// The monitor's repair log grows by append, so its doubling reallocs
	// amortize to (well under) one per run over the measurement window;
	// everything else must be free.
	if allocs > 1 {
		t.Fatalf("steady-state handoff allocates %.1f per run, want <= 1", allocs)
	}
}

// TestShardedMultiCoreSmoke runs the full sharded query path with
// GOMAXPROCS raised above one so router, workers, and merger execute
// truly concurrently (and under -race in CI's fault-injection job), then
// checks the merged output is byte-identical to the single-shard oracle
// and every goroutine drains.
func TestShardedMultiCoreSmoke(t *testing.T) {
	defer leakcheck.Check(t)()
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	in := durabilityWorkload()
	e := New()
	q, err := e.RegisterText(monitorQuery, plan.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if q.Shards() != 4 {
		t.Fatalf("query runs %d shards, want 4", q.Shards())
	}
	e.Run(in)
	if q.Err() != nil {
		t.Fatal(q.Err())
	}
	oracle := run(t, monitorQuery, in)
	compareStreams(t, "multi-core smoke", q.Results(), oracle.Results())
}
