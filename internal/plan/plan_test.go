package plan

import (
	"strings"
	"testing"

	"repro/internal/consistency"
	"repro/internal/temporal"
)

func TestSpecResolutionFromClause(t *testing.T) {
	cases := []struct {
		src  string
		want consistency.Spec
	}{
		{`EVENT E WHEN ANY(A) CONSISTENCY strong`, consistency.Strong()},
		{`EVENT E WHEN ANY(A) CONSISTENCY middle`, consistency.Middle()},
		{`EVENT E WHEN ANY(A) CONSISTENCY weak(500)`, consistency.Weak(500)},
		{`EVENT E WHEN ANY(A) CONSISTENCY weak`, consistency.Weak(0)},
		{`EVENT E WHEN ANY(A) CONSISTENCY level(10, 100)`, consistency.Level(10, 100)},
		{`EVENT E WHEN ANY(A)`, consistency.Middle()}, // default
	}
	for _, c := range cases {
		p, err := Compile(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if p.Spec != c.want {
			t.Errorf("%s: spec = %+v, want %+v", c.src, p.Spec, c.want)
		}
	}
}

func TestSpecOverrideWins(t *testing.T) {
	p, err := Compile(`EVENT E WHEN ANY(A) CONSISTENCY strong`,
		WithSpec(consistency.Weak(7)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec != consistency.Weak(7) {
		t.Errorf("override lost: %+v", p.Spec)
	}
}

func TestStageShapes(t *testing.T) {
	// Pattern only.
	p, err := Compile(`EVENT E WHEN UNLESS(A a, B b, 10)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != 1 {
		t.Errorf("stages = %d", len(p.Stages))
	}
	// Pattern + slice + project.
	p, err = Compile(`EVENT E WHEN SEQUENCE(A a, B b, 10) OUTPUT a.x # [0, 100)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != 3 {
		t.Fatalf("stages = %d, want pattern+slice+project", len(p.Stages))
	}
	if p.Stages[1].Name() != "slice" || p.Stages[2].Name() != "project" {
		t.Errorf("stage order: %s, %s (slice must precede project)",
			p.Stages[1].Name(), p.Stages[2].Name())
	}
	found := false
	for _, r := range p.Rewrites {
		if r == "slice-pushdown" {
			found = true
		}
	}
	if !found {
		t.Errorf("slice-pushdown not recorded: %v", p.Rewrites)
	}
}

func TestSpecializationConditions(t *testing.T) {
	// The whole grammar routes through the incremental matcher tree —
	// flat sequences, nested operators and negation alike.
	for _, q := range []string{
		`EVENT E WHEN SEQUENCE(A a, B b, 10)`,
		`EVENT E WHEN SEQUENCE(ANY(A x), B b, 10)`,
		`EVENT E WHEN UNLESS(A a, B b, 10)`,
	} {
		p, err := Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(p.Stages[0].Name(), "incpattern:") {
			t.Errorf("%s: stage 0 = %s, want incremental pattern op", q, p.Stages[0].Name())
		}
		if len(p.Rewrites) == 0 || p.Rewrites[0] != "incremental-pattern" {
			t.Errorf("%s: rewrites = %v", q, p.Rewrites)
		}
	}
	// The ablation escape hatch keeps the semi-naive evaluator reachable.
	p, err := Compile(`EVENT E WHEN SEQUENCE(A a, B b, 10)`, WithoutSpecialization())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(p.Stages[0].Name(), "pattern:") {
		t.Errorf("WithoutSpecialization: stage 0 = %s, want semi-naive pattern op", p.Stages[0].Name())
	}
	if len(p.Rewrites) != 0 {
		t.Errorf("WithoutSpecialization recorded rewrites: %v", p.Rewrites)
	}
}

func TestExplainMentionsEverything(t *testing.T) {
	p, err := Compile(`EVENT Watch WHEN SEQUENCE(A a, B b, 10) CONSISTENCY strong`)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Explain()
	for _, want := range []string{"Watch", "strong", "incpattern:SEQUENCE", "rewrites"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestCompileErrorPropagates(t *testing.T) {
	if _, err := Compile(`EVENT broken WHEN`); err == nil {
		t.Error("parse error swallowed")
	}
}

func TestUnboundedLevelClamp(t *testing.T) {
	p, err := Compile(`EVENT E WHEN ANY(A) CONSISTENCY level(100)`)
	if err != nil {
		t.Fatal(err)
	}
	// level(B) with no M: M defaults to unbounded, B kept.
	if p.Spec.B != temporal.Duration(100) || p.Spec.M != consistency.Unbounded {
		t.Errorf("spec = %+v", p.Spec)
	}
}
