package plan

import (
	"strings"
	"testing"

	"repro/internal/algebra/inc"
	"repro/internal/consistency"
	"repro/internal/temporal"
)

func TestSpecResolutionFromClause(t *testing.T) {
	cases := []struct {
		src  string
		want consistency.Spec
	}{
		{`EVENT E WHEN ANY(A) CONSISTENCY strong`, consistency.Strong()},
		{`EVENT E WHEN ANY(A) CONSISTENCY middle`, consistency.Middle()},
		{`EVENT E WHEN ANY(A) CONSISTENCY weak(500)`, consistency.Weak(500)},
		{`EVENT E WHEN ANY(A) CONSISTENCY weak`, consistency.Weak(0)},
		{`EVENT E WHEN ANY(A) CONSISTENCY level(10, 100)`, consistency.Level(10, 100)},
		{`EVENT E WHEN ANY(A)`, consistency.Middle()}, // default
	}
	for _, c := range cases {
		p, err := Compile(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if p.Spec != c.want {
			t.Errorf("%s: spec = %+v, want %+v", c.src, p.Spec, c.want)
		}
	}
}

func TestSpecOverrideWins(t *testing.T) {
	p, err := Compile(`EVENT E WHEN ANY(A) CONSISTENCY strong`,
		WithSpec(consistency.Weak(7)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec != consistency.Weak(7) {
		t.Errorf("override lost: %+v", p.Spec)
	}
}

func TestStageShapes(t *testing.T) {
	// Pattern only.
	p, err := Compile(`EVENT E WHEN UNLESS(A a, B b, 10)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != 1 {
		t.Errorf("stages = %d", len(p.Stages))
	}
	// Pattern + slice + project.
	p, err = Compile(`EVENT E WHEN SEQUENCE(A a, B b, 10) OUTPUT a.x # [0, 100)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != 3 {
		t.Fatalf("stages = %d, want pattern+slice+project", len(p.Stages))
	}
	if p.Stages[1].Name() != "slice" || p.Stages[2].Name() != "project" {
		t.Errorf("stage order: %s, %s (slice must precede project)",
			p.Stages[1].Name(), p.Stages[2].Name())
	}
	found := false
	for _, r := range p.Rewrites {
		if r == "slice-pushdown" {
			found = true
		}
	}
	if !found {
		t.Errorf("slice-pushdown not recorded: %v", p.Rewrites)
	}
}

func TestSpecializationConditions(t *testing.T) {
	// The whole grammar routes through the incremental matcher tree —
	// flat sequences, nested operators and negation alike.
	for _, q := range []string{
		`EVENT E WHEN SEQUENCE(A a, B b, 10)`,
		`EVENT E WHEN SEQUENCE(ANY(A x), B b, 10)`,
		`EVENT E WHEN UNLESS(A a, B b, 10)`,
	} {
		p, err := Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(p.Stages[0].Name(), "incpattern:") {
			t.Errorf("%s: stage 0 = %s, want incremental pattern op", q, p.Stages[0].Name())
		}
		if len(p.Rewrites) == 0 || p.Rewrites[0] != "incremental-pattern" {
			t.Errorf("%s: rewrites = %v", q, p.Rewrites)
		}
	}
	// The ablation escape hatch keeps the semi-naive evaluator reachable.
	p, err := Compile(`EVENT E WHEN SEQUENCE(A a, B b, 10)`, WithoutSpecialization())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(p.Stages[0].Name(), "pattern:") {
		t.Errorf("WithoutSpecialization: stage 0 = %s, want semi-naive pattern op", p.Stages[0].Name())
	}
	if len(p.Rewrites) != 0 {
		t.Errorf("WithoutSpecialization recorded rewrites: %v", p.Rewrites)
	}
}

// TestCorrelationPushdown checks when the correlation-key pushdown rewrite
// fires and which attribute reaches the matcher tree.
func TestCorrelationPushdown(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts []Option
		key  string // expected pushdown attribute; "" = no pushdown
	}{
		{name: "correlation-key-equal",
			src: `EVENT E WHEN UNLESS(SEQUENCE(A a, B b, 10), C c, 5)
WHERE CorrelationKey(m, EQUAL)`,
			key: "m"},
		{name: "correlation-key-unique-not-pushable",
			src: `EVENT E WHEN SEQUENCE(A a, B b, 10) WHERE CorrelationKey(m, UNIQUE)`,
			key: ""},
		{name: "pairwise-spanning",
			src: `EVENT E WHEN SEQUENCE(A a, B b, 10) WHERE {a.m = b.m}`,
			key: "m"},
		{name: "pairwise-spanning-three",
			src: `EVENT E WHEN SEQUENCE(A a, B b, C c, 10) WHERE {a.m = b.m} AND {b.m = c.m}`,
			key: "m"},
		{name: "pairwise-not-spanning",
			src: `EVENT E WHEN SEQUENCE(A a, B b, C c, 10) WHERE {a.m = b.m}`,
			key: ""},
		{name: "pairwise-mixed-attrs-not-pushable",
			src: `EVENT E WHEN SEQUENCE(A a, B b, 10) WHERE {a.m = b.n}`,
			key: ""},
		{name: "inequality-not-pushable",
			src: `EVENT E WHEN SEQUENCE(A a, B b, 10) WHERE {a.m != b.m}`,
			key: ""},
		{name: "literal-not-pushable",
			src: `EVENT E WHEN SEQUENCE(A a, B b, 10) WHERE {a.m = 'x'}`,
			key: ""},
		{name: "single-alias-no-join",
			src: `EVENT E WHEN ATMOST(2, A a, 10) WHERE CorrelationKey(m, EQUAL)`,
			key: "m"},
		{name: "disabled-by-option",
			src:  `EVENT E WHEN SEQUENCE(A a, B b, 10) WHERE {a.m = b.m}`,
			opts: []Option{WithoutPushdown()},
			key:  ""},
		// A duplicated positive alias makes Combine prime-rename the
		// colliding payload keys (x.m → x.m'), which neither predicate
		// family inspects — pushdown must refuse (for both shapes).
		{name: "duplicate-alias-correlation-key",
			src: `EVENT E WHEN SEQUENCE(A x, A x, B y, 30) WHERE CorrelationKey(m, EQUAL)`,
			key: ""},
		{name: "duplicate-alias-pairwise",
			src: `EVENT E WHEN SEQUENCE(A x, A x, B y, 30) WHERE {x.m = y.m}`,
			key: ""},
	}
	for _, c := range cases {
		p, err := Compile(c.src, c.opts...)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if strings.HasPrefix(c.name, "duplicate-alias") && p.Part.OK() {
			// Same collision-escape reasoning forbids key-sharding: a
			// detection can mix keys through the primed payload names.
			t.Errorf("%s: plan still partitions (%s)", c.name, p.Part)
		}
		tag := ""
		for _, r := range p.Rewrites {
			if strings.HasPrefix(r, "correlation-pushdown(") {
				tag = strings.TrimSuffix(strings.TrimPrefix(r, "correlation-pushdown("), ")")
			}
		}
		if tag != c.key {
			t.Errorf("%s: pushdown rewrite = %q, want %q (rewrites %v)", c.name, tag, c.key, p.Rewrites)
		}
		if op, ok := p.Stages[0].(*inc.Op); ok {
			if op.JoinKey() != c.key {
				t.Errorf("%s: op join key = %q, want %q", c.name, op.JoinKey(), c.key)
			}
		} else if c.key != "" {
			t.Errorf("%s: keyed plan did not produce an incremental op", c.name)
		}
	}
}

func TestExplainMentionsEverything(t *testing.T) {
	p, err := Compile(`EVENT Watch WHEN SEQUENCE(A a, B b, 10) CONSISTENCY strong`)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Explain()
	for _, want := range []string{"Watch", "strong", "incpattern:SEQUENCE", "rewrites"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestCompileErrorPropagates(t *testing.T) {
	if _, err := Compile(`EVENT broken WHEN`); err == nil {
		t.Error("parse error swallowed")
	}
}

func TestUnboundedLevelClamp(t *testing.T) {
	p, err := Compile(`EVENT E WHEN ANY(A) CONSISTENCY level(100)`)
	if err != nil {
		t.Fatal(err)
	}
	// level(B) with no M: M defaults to unbounded, B kept.
	if p.Spec.B != temporal.Duration(100) || p.Spec.M != consistency.Unbounded {
		t.Errorf("spec = %+v", p.Spec)
	}
}
