// Partitionability analysis: decides whether a compiled plan can run as N
// key-partitioned shards — each shard owning a disjoint key range, its own
// operator instances and its own consistency monitors — such that the
// merged shard output is byte-identical to single-shard execution (see
// internal/engine's sharded runtime and internal/delivery's merge stage).
package plan

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/algebra/inc"
	"repro/internal/consistency"
	"repro/internal/lang"
	"repro/internal/operators"
)

// PartitionMode classifies how a plan's input routes across shards.
type PartitionMode uint8

const (
	// PartitionNone: the plan is not key-decomposable; it runs on a single
	// shard regardless of the requested shard count.
	PartitionNone PartitionMode = iota
	// PartitionByAttr: events route by a payload attribute. Every event fed
	// to the query (retractions included) must carry the attribute.
	PartitionByAttr
	// PartitionByID: state and output decompose per fact, so events route
	// by their event ID (retractions share their insert's ID and follow it).
	PartitionByID
)

// Partition is the analysis result attached to a Plan.
type Partition struct {
	Mode PartitionMode
	// Attr is the routing attribute for PartitionByAttr.
	Attr string
	// Why explains a PartitionNone verdict, for Explain.
	Why string
}

// OK reports whether the plan may run sharded.
func (p Partition) OK() bool { return p.Mode != PartitionNone }

// String renders the verdict for Explain.
func (p Partition) String() string {
	switch p.Mode {
	case PartitionByAttr:
		return "by-attr(" + p.Attr + ")"
	case PartitionByID:
		return "by-id"
	default:
		if p.Why == "" {
			return "none"
		}
		return "none (" + p.Why + ")"
	}
}

func partitionNone(why string, args ...any) Partition {
	return Partition{Mode: PartitionNone, Why: fmt.Sprintf(why, args...)}
}

// partitionOf decides the plan's partitionability.
//
// Requirements, and why they guarantee byte-identical sharded output:
//
//   - Every stage after the head must be stateless: their outputs are a
//     per-event function of the head stage's output, which the head's key
//     partition already routes consistently.
//   - Bounded-memory levels (weak, interior M) need a single stage: a
//     downstream monitor's forgetting horizon tracks the frontier of the
//     head's output stream, which one shard only observes for its own keys.
//   - The head operator must decompose by key: grouped aggregation by its
//     group, pattern evaluation by an EQUAL correlation key (which confines
//     every detection — negation sites included — to one key), per-fact
//     operators (stateless, AlterLifetime) by event ID.
//   - first/last instance selection picks one instance per detection
//     instant across all keys, so it couples keys and forces PartitionNone.
func partitionOf(an *lang.Analysis, p *Plan) Partition {
	for i, st := range p.Stages[1:] {
		if _, ok := st.(operators.Stateless); !ok {
			return partitionNone("downstream stage %d (%s) is stateful", i+1, st.Name())
		}
	}
	if p.Spec.M != consistency.Unbounded && len(p.Stages) > 1 {
		return partitionNone("bounded memory (M=%d) across %d stages", int64(p.Spec.M), len(p.Stages))
	}
	head := p.Stages[0]
	if head.Arity() != 1 {
		return partitionNone("multi-port head operator %s", head.Name())
	}
	switch op := head.(type) {
	case *operators.Aggregate:
		if op.GroupBy == "" {
			return partitionNone("global (ungrouped) aggregate")
		}
		return Partition{Mode: PartitionByAttr, Attr: op.GroupBy}
	// Pattern stages: the incremental matcher tree (the default) and the
	// semi-naive oracle (WithoutSpecialization). The flat SequenceOp never
	// reaches partitionOf — it survives only in hand-built ablation
	// benchmarks, which bypass plan compilation.
	case *algebra.PatternOp, *inc.Op:
		if an == nil || an.PartitionAttr == "" {
			return partitionNone("no CorrelationKey(attr, EQUAL) clause")
		}
		if an.DupPositiveAlias {
			// Combine prime-renames colliding payload keys ("x.m" → "x.m'"),
			// which the correlation filter never inspects — detections can
			// mix keys, so state does not decompose by the attribute.
			return partitionNone("duplicate positive alias: payload collisions escape CorrelationKey(%s)", an.PartitionAttr)
		}
		if an.Mode.Sel != algebra.SelectEach {
			return partitionNone("first/last instance selection couples keys")
		}
		return Partition{Mode: PartitionByAttr, Attr: an.PartitionAttr}
	case *operators.AlterLifetime:
		return Partition{Mode: PartitionByID}
	default:
		if _, ok := head.(operators.Stateless); ok {
			return Partition{Mode: PartitionByID}
		}
		return partitionNone("head operator %s is not key-decomposable", head.Name())
	}
}
