package plan

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/event"
)

const shareSrc = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL)
SC(each, consume)
`

const shareTmpl = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL) AND [Machine_Id Equal $m]
SC(each, consume)
`

func shareKey(t *testing.T, src string, opts ...Option) string {
	t.Helper()
	p, err := Compile(src, opts...)
	if err != nil {
		t.Fatal(err)
	}
	k, ok := p.ShareKey()
	if !ok {
		t.Fatalf("no share key for %q", src)
	}
	return k
}

func bindings(id string) Option {
	return WithBindings(map[string]event.Value{"m": id})
}

// TestShareKeyIdentity: the sharing identity must separate every
// configuration that changes execution — source, spec, shards, rewrites,
// bindings — and nothing else.
func TestShareKeyIdentity(t *testing.T) {
	base := shareKey(t, shareSrc)
	if again := shareKey(t, shareSrc); again != base {
		t.Error("identical compile produced a different share key")
	}
	distinct := map[string]string{
		"spec":       shareKey(t, shareSrc, WithSpec(consistency.Strong())),
		"shards":     shareKey(t, shareSrc, WithShards(4)),
		"noSpecial":  shareKey(t, shareSrc, WithoutSpecialization()),
		"noPushdown": shareKey(t, shareSrc, WithoutPushdown()),
	}
	for label, k := range distinct {
		if k == base {
			t.Errorf("%s variant shares the base identity", label)
		}
	}
	b0 := shareKey(t, shareTmpl, bindings("m000"))
	b0again := shareKey(t, shareTmpl, bindings("m000"))
	b1 := shareKey(t, shareTmpl, bindings("m001"))
	if b0 != b0again {
		t.Error("same bindings produced different share keys")
	}
	if b0 == b1 {
		t.Error("different bindings share an identity")
	}
	if b0 == base {
		t.Error("bound template shares the unbound query's identity")
	}
}

// TestShareKeyRefusesHandBuilt: a plan without source text has no durable
// identity and must never share.
func TestShareKeyRefusesHandBuilt(t *testing.T) {
	p, err := Compile(shareSrc)
	if err != nil {
		t.Fatal(err)
	}
	bare := &Plan{Name: "bare", Stages: p.Stages, Spec: p.Spec, Share: true}
	if k, ok := bare.ShareKey(); ok {
		t.Errorf("hand-built plan got share key %q", k)
	}
}

// TestTemplateCompileCache: instances of one template share one parse and
// analysis per binding set, and the plan carries the routing metadata.
func TestTemplateCompileCache(t *testing.T) {
	p1, err := Compile(shareTmpl, bindings("m042"), WithSharing())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(shareTmpl, bindings("m042"), WithSharing())
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Share || !p2.Share {
		t.Error("WithSharing not recorded")
	}
	if p1.RouteKeyAttr != "Machine_Id" || p1.RouteKeyVal != "m042" {
		t.Errorf("route key = (%s, %v), want (Machine_Id, m042)", p1.RouteKeyAttr, p1.RouteKeyVal)
	}
	if len(p1.RouteTypes) != 3 {
		t.Errorf("route types = %v, want INSTALL/SHUTDOWN/RESTART", p1.RouteTypes)
	}
	if _, err := Compile(shareTmpl); err == nil {
		t.Error("template compiled without bindings")
	}

	d, ok := p1.Durable()
	if !ok {
		t.Fatal("template plan not durable")
	}
	if !d.Share || d.Bindings["m"] != "m042" {
		t.Errorf("durable form lost sharing/bindings: %+v", d)
	}
	p3, err := Compile(d.Src, d.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := p1.ShareKey()
	k3, _ := p3.ShareKey()
	if k1 != k3 {
		t.Error("durable round trip changed the share key")
	}
}
