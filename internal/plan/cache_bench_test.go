package plan

import (
	"fmt"
	"testing"
)

const cacheBenchQuery = `
EVENT MissedRestart%s
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours), RESTART AS z, 5 minutes)
WHERE {x.Machine_Id = y.Machine_Id} AND {x.Machine_Id = z.Machine_Id}
SC(each, consume) CONSISTENCY middle`

// Cache hit: the steady-state cost of re-registering a known query —
// operator instantiation only.
func BenchmarkCompileCached(b *testing.B) {
	src := fmt.Sprintf(cacheBenchQuery, "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// Cache miss: full lex/parse/analyze/instantiate, forced by making every
// source unique (the cache clears itself past its cap, so this stays a
// miss at any b.N).
func BenchmarkCompileUncached(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(fmt.Sprintf(cacheBenchQuery, fmt.Sprintf("_%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}
