// Package plan compiles analyzed CEDR queries into executable physical
// plans: a chain of run-time operators, each to be wrapped in a consistency
// monitor, plus the query's consistency specification. It applies the
// logical-to-physical rewrites the paper attributes to the optimizer:
// specialized operator selection (the incremental sequence matcher when the
// pattern shape allows it) and stateless-stage reordering.
package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/algebra"
	"repro/internal/algebra/inc"
	"repro/internal/consistency"
	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/operators"
	"repro/internal/temporal"
)

// Plan is an executable query plan: a unary operator chain. Stage 0
// consumes the input stream; each later stage consumes the previous
// monitor's output.
type Plan struct {
	Name   string
	Stages []operators.Op
	Spec   consistency.Spec
	// Src is the CEDR query text the plan was compiled from ("" for plans
	// built directly from operators). A non-empty Src plus the serializable
	// options (Durable) is what the engine's write-ahead log records, so a
	// recovered engine can re-compile the identical plan.
	Src string
	// Rewrites records which optimizer rules fired, for Explain.
	Rewrites []string
	// Shards is the requested shard count for key-partitioned parallel
	// execution (0 or 1 = single-shard). The engine honors it only when
	// Part.OK(); otherwise the plan falls back to one shard.
	Shards int
	// Part is the partitionability verdict (see partition.go).
	Part Partition
	// MonitorOpts configure the consistency monitors the engine wraps each
	// stage in (e.g. repair-snapshot cadence). A tuning knob only — it never
	// changes output — so it is deliberately not part of Durable: recovery
	// rebuilds the plan with default cadence and identical results.
	MonitorOpts []consistency.MonitorOption
	// Share marks the plan as shareable: the engine may attach this
	// registration to an already-running chain with the same identity
	// (ShareKey) instead of instantiating new operators. See WithSharing.
	Share bool
	// Bindings are the template parameter values this plan was instantiated
	// with (WithBindings); nil for plain queries. They are part of the
	// plan's durable construction and its sharing identity.
	Bindings map[string]event.Value
	// RouteTypes / RouteKeyAttr / RouteKeyVal mirror the analysis's routing
	// metadata (lang.Analysis.InputTypes, RouteKeyAttr, RouteKeyVal) for
	// the engine's cross-query fabric; RouteTypes nil means the input
	// alphabet is unknown and the plan must see every event.
	RouteTypes   []string
	RouteKeyAttr string
	RouteKeyVal  event.Value

	// an and cfg are retained so Fresh can re-instantiate the operator
	// chain; nil for hand-built plans.
	an  *lang.Analysis
	cfg config
}

// Option adjusts plan construction.
type Option func(*config)

type config struct {
	spec       *consistency.Spec
	noSpecial  bool
	noPushdown bool
	outputName string
	shards     int
	snapSet    bool
	snapEvery  int
	snapMax    int
	share      bool
	bindings   map[string]event.Value
}

// WithSpec overrides the query's consistency clause.
func WithSpec(s consistency.Spec) Option {
	return func(c *config) { c.spec = &s }
}

// WithoutSpecialization disables the incremental-pattern rewrite, running
// the pattern stage on the semi-naive re-deriving evaluator instead; the
// ablation benchmarks use it to compare the two evaluation strategies.
func WithoutSpecialization() Option {
	return func(c *config) { c.noSpecial = true }
}

// WithoutPushdown disables the correlation-key pushdown rewrite: the
// incremental matcher tree still runs, but joins and negation stores stay
// flat and every cross-key combination is enumerated before the residual
// predicates drop it. The key-index ablation benchmarks use it to isolate
// the pushdown's contribution.
func WithoutPushdown() Option {
	return func(c *config) { c.noPushdown = true }
}

// WithSnapshotCadence overrides the consistency monitors' repair-snapshot
// policy for every stage: a snapshot every `every` admitted items, keeping
// at most `max` (max <= 0 keeps the default bound). every <= 0 disables
// snapshots, making every repair rebuild from the checkpoint state. Output
// is identical at any cadence; only repair latency and memory shift.
func WithSnapshotCadence(every, max int) Option {
	return func(c *config) {
		c.snapSet = true
		c.snapEvery = every
		c.snapMax = max
	}
}

// AutoShards, passed to WithShards (or the engine's default), asks the
// engine to pick the shard count at registration: it weighs the plan's
// estimated per-event operator cost (CostNs) against the sharded runtime's
// handoff tax and the cores actually available (GOMAXPROCS/NumCPU), and
// refuses to shard plans whose per-shard work could not amortize the
// overhead — cheap plans stay single-shard instead of regressing.
const AutoShards = -1

// WithShards requests key-partitioned execution over n parallel shards
// (or the engine-chosen count, for AutoShards). Plans whose
// partitionability analysis fails (Part) run single-shard regardless;
// Explain shows the verdict.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithSharing marks the plan shareable: when another registration with the
// same identity (ShareKey — source text, bindings, spec, shards, rewrite
// switches) is already running on the engine, this registration attaches
// to its chain as an additional subscriber endpoint instead of building new
// operators. A late attach joins the shared execution in progress — it
// observes outputs from the attach point onward, over state the chain
// accumulated before it (pub/sub semantics). Plans built directly from
// operators never share.
func WithSharing() Option {
	return func(c *config) { c.share = true }
}

// WithBindings instantiates a query template: every $name placeholder in
// the source text is replaced by bindings[name] at compile time. The parsed
// template is cached by source text, so stamping out many instances costs
// one parse plus a per-instance semantic analysis. Bindings become part of
// the plan's durable construction and sharing identity.
func WithBindings(bindings map[string]event.Value) Option {
	return func(c *config) {
		if len(bindings) == 0 {
			return
		}
		c.bindings = make(map[string]event.Value, len(bindings))
		for k, v := range bindings {
			c.bindings[k] = v
		}
	}
}

// FromAnalysis compiles an analyzed query. The analysis is treated as
// immutable and may be shared (the compile cache and per-shard plan
// instantiation both rely on this); every call builds fresh operator
// instances.
func FromAnalysis(an *lang.Analysis, opts ...Option) (*Plan, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return fromAnalysis(an, cfg)
}

func fromAnalysis(an *lang.Analysis, cfg config) (*Plan, error) {
	p := &Plan{
		Name:         an.Query.Name,
		an:           an,
		cfg:          cfg,
		Shards:       cfg.shards,
		Share:        cfg.share,
		Bindings:     cfg.bindings,
		RouteTypes:   an.InputTypes,
		RouteKeyAttr: an.RouteKeyAttr,
		RouteKeyVal:  an.RouteKeyVal,
	}

	// Pattern stage: every pattern query runs on the incremental matcher
	// tree (internal/algebra/inc), which covers the full §3.3 grammar with
	// delta propagation instead of per-event re-derivation. The semi-naive
	// oracle evaluator remains reachable via WithoutSpecialization as the
	// ablation baseline (and as the fallback for expressions outside the
	// tree's grammar, should the language grow one).
	if !cfg.noSpecial && inc.Supported(an.Expr) {
		// Correlation-key pushdown: when the analysis proved an equality
		// attribute (CorrelationKey EQUAL or a spanning pairwise-equality
		// conjunction — see lang.Analysis.PushKeyAttr), the matcher tree
		// keys its join and negation stores by it; predicates outside that
		// proof remain in the residual filterNode unchanged.
		var opOpts []inc.OpOption
		if an.PushKeyAttr != "" && !cfg.noPushdown {
			opOpts = append(opOpts, inc.WithJoinKey(an.PushKeyAttr))
			p.Rewrites = append(p.Rewrites, "correlation-pushdown("+an.PushKeyAttr+")")
		}
		p.Stages = append(p.Stages, inc.NewOp(an.Expr, an.Mode, an.Query.Name, opOpts...))
		p.Rewrites = append(p.Rewrites, "incremental-pattern")
	} else {
		p.Stages = append(p.Stages, algebra.NewPatternOp(an.Expr, an.Mode, an.Query.Name))
	}

	// Slice before projection: both are stateless, and slicing first
	// discards events the projection would otherwise transform.
	if an.Slice != nil {
		p.Stages = append(p.Stages, operators.NewSlice(*an.Slice))
		if an.OutputMap != nil {
			p.Rewrites = append(p.Rewrites, "slice-pushdown")
		}
	}
	if an.OutputMap != nil {
		p.Stages = append(p.Stages, operators.NewProject(operators.Mapper(an.OutputMap)))
	}

	p.Spec = resolveSpec(an, cfg)
	p.Part = partitionOf(an, p)
	if cfg.snapSet {
		p.MonitorOpts = append(p.MonitorOpts,
			consistency.WithSnapshotCadence(cfg.snapEvery, cfg.snapMax))
	}
	return p, nil
}

// Durable is the serializable projection of a plan's construction: the
// source text plus every compile option, sufficient to rebuild a
// structurally identical plan in a fresh process. It is what the engine's
// durability layer logs for each registration.
type Durable struct {
	Src              string
	HasSpec          bool
	Spec             consistency.Spec
	Shards           int
	NoSpecialization bool
	NoPushdown       bool
	Share            bool
	Bindings         map[string]event.Value
}

// Durable returns the plan's serializable construction, or ok == false for
// plans built directly from operators (no source text to re-compile).
func (p *Plan) Durable() (Durable, bool) {
	if p.Src == "" || p.an == nil {
		return Durable{}, false
	}
	d := Durable{
		Src:              p.Src,
		Shards:           p.cfg.shards,
		NoSpecialization: p.cfg.noSpecial,
		NoPushdown:       p.cfg.noPushdown,
		Share:            p.cfg.share,
		Bindings:         p.cfg.bindings,
	}
	if p.cfg.spec != nil {
		d.HasSpec = true
		d.Spec = *p.cfg.spec
	}
	return d, true
}

// Options rebuilds the compile options a Durable records; Compile(d.Src,
// d.Options()...) reproduces the original plan.
func (d Durable) Options() []Option {
	var opts []Option
	if d.HasSpec {
		opts = append(opts, WithSpec(d.Spec))
	}
	if d.Shards != 0 {
		opts = append(opts, WithShards(d.Shards))
	}
	if d.NoSpecialization {
		opts = append(opts, WithoutSpecialization())
	}
	if d.NoPushdown {
		opts = append(opts, WithoutPushdown())
	}
	if d.Share {
		opts = append(opts, WithSharing())
	}
	if len(d.Bindings) > 0 {
		opts = append(opts, WithBindings(d.Bindings))
	}
	return opts
}

// ShareKey is the plan's execution-sharing identity: two registrations
// whose keys are equal would build byte-identically behaving operator
// chains, so the engine may run them on one shared chain. The key covers
// the source text, the template bindings, the resolved consistency spec,
// the requested shard count, the rewrite switches, and the snapshot
// cadence. ok is false for hand-built plans (no source identity) — they
// never share.
func (p *Plan) ShareKey() (string, bool) {
	if p.Src == "" || p.an == nil {
		return "", false
	}
	c := p.cfg
	return fmt.Sprintf("%s\x1f%d,%d\x1f%d\x1f%t,%t\x1f%t,%d,%d\x1f%s",
		p.Src, p.Spec.B, p.Spec.M, c.shards, c.noSpecial, c.noPushdown,
		c.snapSet, c.snapEvery, c.snapMax, canonBindings(c.bindings)), true
}

// canonBindings renders bindings deterministically (sorted keys, dynamic
// type included so int64(1) and "1" stay distinct identities).
func canonBindings(b map[string]event.Value) string {
	if len(b) == 0 {
		return ""
	}
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, "%s=%T:%v", k, b[k], b[k])
	}
	return sb.String()
}

// Fresh re-instantiates the plan: a structurally identical plan whose
// operator chain is a brand-new set of instances with empty state. The
// sharded runtime builds one chain per shard this way — operator Clones may
// share scratch with their original and are only sequentially safe, whereas
// independently instantiated chains are safe to drive from concurrent
// shard workers. Hand-built plans (no retained analysis) cannot be
// re-instantiated.
func (p *Plan) Fresh() (*Plan, error) {
	if p.an == nil {
		return nil, fmt.Errorf("plan: %s was built directly from operators and cannot be re-instantiated", p.Name)
	}
	fp, err := fromAnalysis(p.an, p.cfg)
	if err != nil {
		return nil, err
	}
	fp.Src = p.Src
	return fp, nil
}

func resolveSpec(an *lang.Analysis, cfg config) consistency.Spec {
	if cfg.spec != nil {
		return *cfg.spec
	}
	c := an.Query.Consistency
	if c == nil {
		return consistency.Middle()
	}
	switch c.Level {
	case "strong":
		return consistency.Strong()
	case "middle":
		return consistency.Middle()
	case "weak":
		m := temporal.Duration(0)
		if c.HasM {
			m = c.M
		}
		return consistency.Weak(m)
	default:
		b, m := c.B, consistency.Unbounded
		if c.HasM {
			m = c.M
		}
		return consistency.Level(b, m)
	}
}

// CostNs estimates the plan's per-event processing cost in nanoseconds:
// the sum of its stages' operator cost classes (operators.CostOf). The
// engine's auto-shard heuristic compares it to the sharded runtime's
// per-event handoff tax.
func (p *Plan) CostNs() int {
	c := 0
	for _, op := range p.Stages {
		c += operators.CostOf(op)
	}
	return c
}

// Explain renders the plan.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s [%s]\n", p.Name, p.Spec.Name())
	for i, s := range p.Stages {
		fmt.Fprintf(&b, "  %d: %s\n", i, s.Name())
	}
	if len(p.Rewrites) > 0 {
		fmt.Fprintf(&b, "  rewrites: %s\n", strings.Join(p.Rewrites, ", "))
	}
	fmt.Fprintf(&b, "  partition: %s", p.Part)
	if p.Shards > 1 {
		fmt.Fprintf(&b, " × %d shards", p.Shards)
	}
	b.WriteByte('\n')
	return b.String()
}

// The analysis cache: compiling the same query text repeatedly (standing
// queries re-registered per engine instance, benchmark loops, shard
// fan-out) skips the lexer/parser/binder and goes straight to operator
// instantiation, which FromAnalysis performs fresh per call. Analyses are
// immutable once built, so sharing one across concurrent compilations is
// safe.
var (
	cacheMu       sync.RWMutex
	analysisCache = map[string]*lang.Analysis{}
	templateCache = map[string]*lang.Query{}
)

// analysisCacheCap bounds each cache; pathological workloads that compile
// unbounded distinct sources (or bindings) reset it rather than growing
// without bound.
const analysisCacheCap = 512

// Compile is the front door: CEDR text to executable plan. Results are
// cached by source text (plus bindings, for template instances): repeated
// compilations reuse the semantic analysis and only re-instantiate
// operators, and template instances additionally share one parse of the
// template text across all bindings.
func Compile(src string, opts ...Option) (*Plan, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	key := src
	if len(cfg.bindings) > 0 {
		key = src + "\x1f" + canonBindings(cfg.bindings)
	}
	cacheMu.RLock()
	an := analysisCache[key]
	cacheMu.RUnlock()
	if an == nil {
		var err error
		if an, err = analyze(src, cfg.bindings); err != nil {
			return nil, err
		}
		cacheMu.Lock()
		if len(analysisCache) >= analysisCacheCap {
			clear(analysisCache)
		}
		analysisCache[key] = an
		cacheMu.Unlock()
	}
	p, err := fromAnalysis(an, cfg)
	if err != nil {
		return nil, err
	}
	p.Src = src
	return p, nil
}

// analyze runs the language front end on a cache miss. Plain queries go
// through lang.Compile; template instances parse once (templateCache) and
// bind per instance.
func analyze(src string, bindings map[string]event.Value) (*lang.Analysis, error) {
	if len(bindings) == 0 {
		return lang.Compile(src)
	}
	cacheMu.RLock()
	q := templateCache[src]
	cacheMu.RUnlock()
	if q == nil {
		var err error
		if q, err = lang.Parse(src); err != nil {
			return nil, err
		}
		cacheMu.Lock()
		if len(templateCache) >= analysisCacheCap {
			clear(templateCache)
		}
		templateCache[src] = q
		cacheMu.Unlock()
	}
	return lang.AnalyzeBound(q, bindings)
}
