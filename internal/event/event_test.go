package event

import (
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

func TestKindString(t *testing.T) {
	if Insert.String() != "insert" || Retract.String() != "retract" || CTI.String() != "cti" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Errorf("unknown kind: %s", Kind(9))
	}
}

func TestNewInsert(t *testing.T) {
	e := NewInsert(7, "INSTALL", 1, 10, Payload{"machine": "m1"})
	if e.Kind != Insert || e.ID != 7 || e.Type != "INSTALL" {
		t.Errorf("header wrong: %+v", e)
	}
	if e.V != temporal.NewInterval(1, 10) {
		t.Errorf("V = %v", e.V)
	}
	if e.Sync() != 1 {
		t.Errorf("Sync = %v, want Vs", e.Sync())
	}
	if e.RT != 1 {
		t.Errorf("RT = %v", e.RT)
	}
}

func TestNewRetractSync(t *testing.T) {
	// Sync of a retraction is the (new) end time (Section 4: Sync = Oe).
	r := NewRetract(7, "INSTALL", 1, 5, nil)
	if r.Kind != Retract {
		t.Error("kind")
	}
	if r.Sync() != 5 {
		t.Errorf("retraction Sync = %v, want 5", r.Sync())
	}
}

func TestCTI(t *testing.T) {
	c := NewCTI(42)
	if !c.IsCTI() {
		t.Error("IsCTI false")
	}
	if c.Sync() != 42 {
		t.Errorf("CTI Sync = %v", c.Sync())
	}
	if NewInsert(1, "A", 1, 2, nil).IsCTI() {
		t.Error("insert reported as CTI")
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := NewInsert(1, "A", 1, 10, Payload{"x": int64(5)})
	e.CBT = []ID{2, 3}
	c := e.Clone()
	c.Payload["x"] = int64(6)
	c.CBT[0] = 99
	if e.Payload["x"] != int64(5) {
		t.Error("payload not deep-copied")
	}
	if e.CBT[0] != 2 {
		t.Error("lineage not deep-copied")
	}
}

func TestSameFactIgnoresCEDRTime(t *testing.T) {
	a := NewInsert(1, "A", 1, 10, Payload{"x": int64(5)})
	b := a.Clone()
	b.C = temporal.NewInterval(100, 200) // different system time
	if !a.SameFact(b) {
		t.Error("SameFact must ignore CEDR time")
	}
	b.V = temporal.NewInterval(1, 9)
	if a.SameFact(b) {
		t.Error("SameFact must see valid-time change")
	}
}

func TestPayloadEqualAndKey(t *testing.T) {
	p := Payload{"a": int64(1), "b": "x"}
	q := Payload{"b": "x", "a": int64(1)}
	if !p.Equal(q) {
		t.Error("payload equality is order-sensitive")
	}
	if p.Key() != q.Key() {
		t.Error("Key not canonical")
	}
	if p.Key() != "a=1|b=x" {
		t.Errorf("Key = %q", p.Key())
	}
	if p.Equal(Payload{"a": int64(1)}) {
		t.Error("different-size payloads equal")
	}
	if p.Equal(Payload{"a": int64(2), "b": "x"}) {
		t.Error("different values equal")
	}
	var empty Payload
	if empty.Key() != "" || empty.String() != "{}" {
		t.Error("empty payload rendering")
	}
}

func TestValueEqualNumericBridge(t *testing.T) {
	if !ValueEqual(int64(3), float64(3)) {
		t.Error("int64/float64 bridge broken")
	}
	if !ValueEqual(int(3), int64(3)) {
		t.Error("int/int64 bridge broken")
	}
	if ValueEqual(int64(3), "3") {
		t.Error("number should not equal string")
	}
	if !ValueEqual("a", "a") || ValueEqual("a", "b") {
		t.Error("string equality broken")
	}
	if !ValueEqual(true, true) || ValueEqual(true, false) {
		t.Error("bool equality broken")
	}
}

func TestValueLess(t *testing.T) {
	if !ValueLess(int64(1), float64(2)) {
		t.Error("1 < 2.0 should hold")
	}
	if ValueLess(float64(2), int64(1)) {
		t.Error("2.0 < 1 should not hold")
	}
	if !ValueLess("a", "b") || ValueLess("b", "a") {
		t.Error("string ordering broken")
	}
	if ValueLess("a", int64(1)) || ValueLess(int64(1), "a") {
		t.Error("incomparable pairs must be false")
	}
}

func TestNum(t *testing.T) {
	if f, ok := Num(int64(4)); !ok || f != 4 {
		t.Error("Num(int64)")
	}
	if _, ok := Num("x"); ok {
		t.Error("Num(string) should fail")
	}
}

func TestPairDeterministicAndOrderSensitive(t *testing.T) {
	a := Pair(1, 2, 3)
	b := Pair(1, 2, 3)
	if a != b {
		t.Error("Pair not deterministic")
	}
	if Pair(1, 2) == Pair(2, 1) {
		t.Error("Pair should be order-sensitive (cbt[] is a sequence)")
	}
	if Pair(1) == Pair(1, 1) {
		t.Error("Pair should distinguish arity")
	}
}

// Property: Pair behaves injectively on random small inputs (no collisions
// observed across distinct sequences in sampled space).
func TestPairQuickNoTrivialCollisions(t *testing.T) {
	f := func(a, b uint16) bool {
		if a == b {
			return true
		}
		return Pair(ID(a)) != Pair(ID(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerator(t *testing.T) {
	g := NewGenerator(10)
	if g.Next() != 10 || g.Next() != 11 {
		t.Error("Generator sequence wrong")
	}
}

func TestEventString(t *testing.T) {
	e := NewInsert(1, "A", 1, 10, Payload{"x": int64(5)})
	s := e.String()
	if s == "" {
		t.Error("empty String")
	}
	c := NewCTI(4)
	if c.String() != "CTI(4)" {
		t.Errorf("CTI String = %q", c.String())
	}
}
