// Package event defines the CEDR event model: the tritemporal event header
// from Section 2 of the paper — (ID, Vs, Ve, Os, Oe, Cs, Ce, Rt, cbt[];
// payload) — together with event kinds (inserts, retractions, CTI
// punctuations), payloads, and the idgen pairing function used by operators
// to mint output IDs.
package event

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"repro/internal/temporal"
)

// ID identifies an event. Modifications of the same logical fact share an ID
// (Section 2); operators derive output IDs from input IDs via Pair.
type ID uint64

// Kind classifies stream items.
type Kind uint8

const (
	// Insert introduces a new fact (or, for a bitemporal modification
	// stream, a new version of a fact under an existing ID).
	Insert Kind = iota
	// Retract shortens the lifetime of a previously inserted fact — the
	// Section 6 unitemporal retraction whose Ve is reduced, or the Section 4
	// tritemporal retraction whose Oe is reduced.
	Retract
	// CTI (current-time-increment) is the punctuation carrying an
	// occurrence-time guarantee: no subsequent event on the stream will have
	// Sync() earlier than the CTI's timestamp. The paper calls these
	// "guarantees on input time" / provider-declared sync points.
	CTI
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Retract:
		return "retract"
	case CTI:
		return "cti"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is a stream item. The field names follow the conceptual schema of
// the paper: V is the validity interval [Vs, Ve), O the occurrence interval
// [Os, Oe), C the CEDR-time interval [Cs, Ce). Type carries the event type
// name used by the pattern language ("INSTALL", "SHUTDOWN", ...). RT is the
// root time and CBT the contributor lineage of composite events (§3.3.1).
//
// In the Section 6 unitemporal run-time setting, occurrence and valid time
// are merged: operators read and write V only, and retractions reduce V.End
// of the entry sharing the same ID.
type Event struct {
	ID   ID
	Kind Kind
	Type string

	V temporal.Interval // valid time [Vs, Ve)
	O temporal.Interval // occurrence time [Os, Oe)
	C temporal.Interval // CEDR (system) time [Cs, Ce)

	RT  temporal.Time // root time: min root time over contributors
	CBT []ID          // contributor lineage, ordered (nil for primitive events)

	Payload Payload
}

// NewInsert builds a unitemporal insert event: valid for [vs, ve), occurring
// at vs (the run-time setting of §6 merges occurrence into valid time).
func NewInsert(id ID, typ string, vs, ve temporal.Time, p Payload) Event {
	return Event{
		ID:      id,
		Kind:    Insert,
		Type:    typ,
		V:       temporal.NewInterval(vs, ve),
		O:       temporal.NewInterval(vs, temporal.Infinity),
		RT:      vs,
		Payload: p,
	}
}

// NewRetract builds a unitemporal retraction: the event identified by id has
// its valid end time reduced to newVE. A retraction with newVE == Vs removes
// the fact entirely.
func NewRetract(id ID, typ string, vs, newVE temporal.Time, p Payload) Event {
	return Event{
		ID:      id,
		Kind:    Retract,
		Type:    typ,
		V:       temporal.NewInterval(vs, newVE),
		O:       temporal.NewInterval(vs, temporal.Infinity),
		RT:      vs,
		Payload: p,
	}
}

// NewCTI builds a punctuation promising that no later item on this stream
// will carry a Sync time earlier than t.
func NewCTI(t temporal.Time) Event {
	return Event{Kind: CTI, V: temporal.From(t), O: temporal.From(t)}
}

// IsCTI reports whether the item is punctuation rather than data.
func (e Event) IsCTI() bool { return e.Kind == CTI }

// Sync is the annotated-history-table Sync attribute of Section 4: Os for
// insertions, Oe for retractions. In the unitemporal setting it degenerates
// to Vs for inserts and the (new) Ve for retractions. CTIs synchronize at
// their guarantee time.
func (e Event) Sync() temporal.Time {
	switch e.Kind {
	case Retract:
		return e.V.End
	case CTI:
		return e.V.Start
	default:
		return e.V.Start
	}
}

// Clone returns a deep copy of the event (lineage and payload included).
func (e Event) Clone() Event {
	out := e
	if e.CBT != nil {
		out.CBT = append([]ID(nil), e.CBT...)
	}
	if e.Payload != nil {
		out.Payload = e.Payload.Clone()
	}
	return out
}

// Identical reports whether two events are equal on every attribute,
// including CEDR time and lineage (payloads compared structurally, with a
// shared-backing short-circuit). The consistency monitor uses it to detect
// replay outputs that reproduce a previously emitted fact exactly.
func (e Event) Identical(o Event) bool {
	if e.ID != o.ID || e.Kind != o.Kind || e.Type != o.Type ||
		e.V != o.V || e.O != o.O || e.C != o.C || e.RT != o.RT ||
		len(e.CBT) != len(o.CBT) {
		return false
	}
	if len(e.CBT) > 0 && &e.CBT[0] != &o.CBT[0] {
		for i := range e.CBT {
			if e.CBT[i] != o.CBT[i] {
				return false
			}
		}
	}
	return e.Payload.Equal(o.Payload)
}

// SameFact reports whether two events describe the same logical content,
// ignoring CEDR time — the projection used by logical equivalence
// (Definition 1 projects out Cs and Ce).
func (e Event) SameFact(o Event) bool {
	return e.ID == o.ID && e.Kind == o.Kind && e.Type == o.Type &&
		e.V == o.V && e.O == o.O && e.Payload.Equal(o.Payload)
}

// String renders a compact single-line description.
func (e Event) String() string {
	if e.IsCTI() {
		return fmt.Sprintf("CTI(%s)", e.V.Start)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s#%d %s V=%s", e.Kind, e.ID, e.Type, e.V)
	if e.O.Start != e.V.Start || !e.O.End.IsInfinite() {
		fmt.Fprintf(&b, " O=%s", e.O)
	}
	if len(e.Payload) > 0 {
		fmt.Fprintf(&b, " %s", e.Payload)
	}
	return b.String()
}

// Payload is the event body: a bag of named values. The paper treats the
// payload as opaque to operator definitions; predicates from the WHERE
// clause and instance transformation in the OUTPUT clause read and write it.
type Payload map[string]Value

// Value is a payload attribute value. Supported dynamic types are int64,
// float64, string and bool; Equal and Less define cross-type comparison where
// it is meaningful (int64 vs float64).
type Value any

// Clone copies the payload.
func (p Payload) Clone() Payload {
	if p == nil {
		return nil
	}
	out := make(Payload, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Equal reports deep equality of payloads.
func (p Payload) Equal(o Payload) bool {
	// Payloads are immutable by operator contract and widely shared by
	// shallow event copies, so identical backing means equal — an O(1)
	// fast path the consistency monitor's repair diff leans on.
	if p.shares(o) {
		return true
	}
	if len(p) != len(o) {
		return false
	}
	for k, v := range p {
		w, ok := o[k]
		if !ok || !ValueEqual(v, w) {
			return false
		}
	}
	return true
}

// shares reports whether two payloads use the same backing map — a word
// compare of the map pointers.
func (p Payload) shares(o Payload) bool {
	if p == nil || o == nil {
		return p == nil && o == nil
	}
	return reflect.ValueOf(p).Pointer() == reflect.ValueOf(o).Pointer()
}

// Key returns a deterministic canonical string for the payload, used to
// compare and hash payloads when checking logical equivalence and
// coalescing.
func (p Payload) Key() string {
	if len(p) == 0 {
		return ""
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s=%v", k, p[k])
	}
	return b.String()
}

// String renders the payload deterministically.
func (p Payload) String() string { return "{" + p.Key() + "}" }

// ValueEqual compares two payload values, treating int64 and float64 as the
// same numeric domain.
func ValueEqual(a, b Value) bool {
	af, aNum := asFloat(a)
	bf, bNum := asFloat(b)
	if aNum && bNum {
		return af == bf
	}
	return a == b
}

// ValueLess orders two payload values of the same (numeric or string)
// domain. It reports false for incomparable pairs.
func ValueLess(a, b Value) bool {
	af, aNum := asFloat(a)
	bf, bNum := asFloat(b)
	if aNum && bNum {
		return af < bf
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return as < bs
	}
	return false
}

func asFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// Num converts a numeric payload value to float64; ok is false for
// non-numeric values.
func Num(v Value) (f float64, ok bool) { return asFloat(v) }
