package event

import "sync/atomic"

// The paper (§3.3.1) requires a pairing function idgen that takes a variable
// number of input IDs and produces an output ID such that different input ID
// sequences generate different output IDs. We implement it with the FNV-1a
// mixing function over the ordered ID sequence, which is deterministic across
// runs; the astronomically unlikely 64-bit collisions are acceptable for a
// reproduction (the paper's property is stated for an idealized function).

const (
	fnvOffset uint64 = 1469598103934665603
	fnvPrime  uint64 = 1099511628211
)

// Pair derives a composite event ID from the ordered contributor IDs.
func Pair(ids ...ID) ID {
	h := fnvOffset
	for _, id := range ids {
		x := uint64(id)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= fnvPrime
			x >>= 8
		}
	}
	return ID(h)
}

// Generator mints fresh primitive-event IDs. It is safe for concurrent use.
type Generator struct {
	next atomic.Uint64
}

// NewGenerator returns a generator whose first ID is start.
func NewGenerator(start ID) *Generator {
	g := &Generator{}
	g.next.Store(uint64(start))
	return g
}

// Next returns a fresh ID.
func (g *Generator) Next() ID {
	return ID(g.next.Add(1) - 1)
}
