package cedr

// Benchmarks regenerating the paper's evaluation artifacts, one per figure
// or experiment (see DESIGN.md §4 for the index). Run:
//
//	go test -bench=. -benchmem
//
// Absolute timings are hardware-dependent; the semantic shapes (who blocks,
// who retracts, who forgets) are asserted by the unit tests in
// internal/core. The benchmarks here measure the costs those shapes imply.

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/baseline"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/delivery"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/history"
	"repro/internal/operators"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/workload"
)

// --- Figures 1–6, 10: the temporal model machinery ---

func BenchmarkFigure1ConceptualModel(b *testing.B) {
	tbl, _ := history.Figure1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tbl.CanonicalTo(3)
	}
}

func BenchmarkFigure2TritemporalReduce(b *testing.B) {
	tbl, _, _ := history.Figure2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tbl.Reduce()
	}
}

func BenchmarkFigure5Canonicalization(b *testing.B) {
	left, right, _ := history.Figure3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !left.EquivalentTo(right, 3) {
			b.Fatal("figure 5 equivalence broken")
		}
	}
}

func BenchmarkFigure6SyncPoints(b *testing.B) {
	tbl, _ := history.Figure6()
	ann := tbl.Annotate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = history.SyncPoints(ann)
	}
}

func BenchmarkFigure10IdealTable(b *testing.B) {
	src := workload.StockTicks(workload.DefaultTicks())
	tbl := history.FromEvents(src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tbl.Ideal().Star()
	}
}

// --- Figure 8: consistency levels × orderliness ---

func fig8Bench(b *testing.B, spec consistency.Spec, orderly bool) {
	b.Helper()
	cfg := core.DefaultFig8()
	cfg.Events = 300
	src := workload.UniformEvents(workload.Uniform{
		Seed: cfg.Seed, Events: cfg.Events, Groups: 5,
		Spacing: cfg.Spacing, Lifetime: temporal.Duration(cfg.Lifetime)})
	var dcfg delivery.Config
	if orderly {
		dcfg = delivery.Ordered(cfg.DenseCTIPeriod)
	} else {
		dcfg = delivery.Disordered(cfg.Seed, cfg.SparseCTI, cfg.StragglerDelay, cfg.StragglerProb)
	}
	delivered := delivery.Deliver(src, dcfg)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := operators.NewAggregate(operators.Count, "", "g")
		out, _ := consistency.RunStreams(op, spec, delivered)
		if len(out) == 0 {
			b.Fatal("no output")
		}
	}
	b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkFigure8StrongOrdered(b *testing.B)    { fig8Bench(b, consistency.Strong(), true) }
func BenchmarkFigure8StrongDisordered(b *testing.B) { fig8Bench(b, consistency.Strong(), false) }
func BenchmarkFigure8MiddleOrdered(b *testing.B)    { fig8Bench(b, consistency.Middle(), true) }
func BenchmarkFigure8MiddleDisordered(b *testing.B) { fig8Bench(b, consistency.Middle(), false) }
func BenchmarkFigure8WeakOrdered(b *testing.B)      { fig8Bench(b, consistency.Weak(0), true) }
func BenchmarkFigure8WeakDisordered(b *testing.B)   { fig8Bench(b, consistency.Weak(0), false) }

// --- Figure 9: an interior point of the (B, M) spectrum ---

func BenchmarkFigure9InteriorLevel(b *testing.B) {
	fig8Bench(b, consistency.Level(30, 150), false)
}

// --- §3.1 end-to-end: the CIDR07 example through language+plan+engine ---

func BenchmarkCIDR07EndToEnd(b *testing.B) {
	src, _ := workload.MachineEvents(workload.DefaultMachines())
	tenMin := 10 * temporal.Minute
	delivered := delivery.Deliver(src, delivery.Ordered(tenMin))
	const q = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours), RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL)
SC(each, consume)`
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := New()
		query, err := sys.Register(q, WithSpec(Middle()))
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(delivered)
		if len(query.Alerts()) == 0 {
			b.Fatal("no alerts")
		}
	}
	b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// --- §1 baseline comparison: throughput of the strawman vs CEDR ---

func BenchmarkBaselinePointAggregate(b *testing.B) {
	src := workload.StockTicks(workload.DefaultTicks())
	delivered := delivery.Deliver(src, delivery.Ordered(10*temporal.Second))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		baseline.RunPointAggregate(delivered, 10*temporal.Second, "price")
	}
	b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkCEDRAggregateStrong(b *testing.B) {
	src := workload.StockTicks(workload.DefaultTicks())
	delivered := delivery.Deliver(src, delivery.Ordered(10*temporal.Second))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := operators.NewAggregate(operators.Avg, "price", "symbol")
		consistency.RunStreams(op, consistency.Strong(), delivered)
	}
	b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkPubSubRouting(b *testing.B) {
	src := workload.StockTicks(workload.DefaultTicks())
	ps := baseline.NewPubSub()
	for s := 0; s < 8; s++ {
		ps.Subscribe("TICK", nil)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range src {
			ps.Publish(e)
		}
	}
}

// --- Ablations ---

// Three-way sequence-matching ablation over the same workload and monitor:
// the delta-driven matcher tree (the default plan, rewrite
// `incremental-pattern`), the semi-naive re-deriving evaluator
// (WithoutSpecialization), and the hand-specialized flat chain matcher
// (algebra.SequenceOp, kept purely as this ablation's upper baseline).
func seqBenchOp(b *testing.B, mk func() operators.Op) {
	src, _ := workload.MachineEvents(workload.DefaultMachines())
	delivered := delivery.Deliver(src, delivery.Ordered(10*temporal.Minute))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := consistency.NewMonitor(mk(), consistency.Middle())
		for _, e := range delivered {
			m.Push(0, e)
		}
		m.Finish()
	}
	b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func seqBench(b *testing.B, opts ...plan.Option) {
	const q = `EVENT Pairs WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 12 hours)
WHERE {x.Machine_Id = y.Machine_Id} SC(each, consume)`
	p, err := plan.Compile(q, opts...)
	if err != nil {
		b.Fatal(err)
	}
	seqBenchOp(b, func() operators.Op { return p.Stages[0].Clone() })
}

func BenchmarkAblationSequenceIncremental(b *testing.B) { seqBench(b) }
func BenchmarkAblationSequenceGeneric(b *testing.B) {
	seqBench(b, plan.WithoutSpecialization())
}

// The same matcher tree with correlation-key pushdown disabled: the delta
// against BenchmarkAblationSequenceIncremental is the pushdown's isolated
// contribution (the join enumerates every cross-key pair again and the
// residual filter drops them after the fact).
func BenchmarkAblationSequenceNoPushdown(b *testing.B) {
	seqBench(b, plan.WithoutPushdown())
}

// Key-index stress: the pushdown win grows with the key domain, since the
// flat join's fan-out is quadratic in co-live matches across *all* keys
// while the keyed join only touches one bucket. 64 machines instead of the
// ablation's 10 — this is the shape cedrbench gates as pattern_keyindex.
func BenchmarkAblationPatternKeyIndex(b *testing.B) {
	src, _ := workload.MachineEvents(workload.Machines{
		Seed: 1, Machines: 64, Cycles: 4,
		RestartDeadline: 5 * temporal.Minute, MissProb: 0.3,
		CycleGap: 30 * temporal.Minute,
	})
	delivered := delivery.Deliver(src, delivery.Ordered(10*temporal.Minute))
	const q = `EVENT Pairs WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 12 hours)
WHERE {x.Machine_Id = y.Machine_Id} SC(each, consume)`
	p, err := plan.Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := consistency.NewMonitor(p.Stages[0].Clone(), consistency.Middle())
		for _, e := range delivered {
			m.Push(0, e)
		}
		m.Finish()
	}
	b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
func BenchmarkAblationSequenceSpecialized(b *testing.B) {
	pred := func(p event.Payload) bool {
		return event.ValueEqual(p["x.Machine_Id"], p["y.Machine_Id"])
	}
	seqBenchOp(b, func() operators.Op {
		op := algebra.NewSequenceOp([]string{"INSTALL", "SHUTDOWN"}, []string{"x", "y"},
			12*temporal.Hour, algebra.SCMode{Cons: algebra.Consume}, "Pairs")
		op.Pred = pred
		return op
	})
}

// Consumption: the §1 claim that SEQUENCE without consumption has
// multiplicative output.
func consumptionBench(b *testing.B, mode algebra.SCMode) {
	var src stream.Stream
	n := 64
	for i := 0; i < n; i++ {
		src = append(src,
			event.NewInsert(event.ID(2*i+1), "A", temporal.Time(2*i), temporal.Infinity, nil),
			event.NewInsert(event.ID(2*i+2), "B", temporal.Time(2*i+1), temporal.Infinity, nil))
	}
	expr := algebra.SequenceExpr{Kids: []algebra.Expr{
		algebra.TypeExpr{Type: "A", Alias: "a"}, algebra.TypeExpr{Type: "B", Alias: "b"},
	}, W: temporal.Duration(4 * n)}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := algebra.NewSequenceOp([]string{"A", "B"}, []string{"a", "b"},
			expr.W, mode, "out")
		total := 0
		for _, e := range src {
			total += len(op.Process(0, e))
		}
		if total == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkAblationConsumptionReuse(b *testing.B) {
	consumptionBench(b, algebra.SCMode{})
}
func BenchmarkAblationConsumptionConsume(b *testing.B) {
	consumptionBench(b, algebra.SCMode{Cons: algebra.Consume})
}

// Alignment-buffer ablation: monitor fast path (in-order) vs repair path
// (every tenth event is a straggler).
func BenchmarkMonitorFastPath(b *testing.B) {
	src := workload.StockTicks(workload.DefaultTicks())
	delivered := delivery.Deliver(src, delivery.Ordered(5*temporal.Second))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := operators.NewSelect(func(event.Payload) bool { return true })
		consistency.RunStreams(op, consistency.Middle(), delivered)
	}
	b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkMonitorRepairPath(b *testing.B) {
	src := workload.StockTicks(workload.DefaultTicks())
	delivered := delivery.Deliver(src,
		delivery.Disordered(5, 5*temporal.Second, 3*temporal.Second, 0.1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := operators.NewSelect(func(event.Payload) bool { return true })
		consistency.RunStreams(op, consistency.Middle(), delivered)
	}
	b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// --- Monitor scaling: events × straggler rate × consistency level ---

// BenchmarkMonitorScaling sweeps the consistency monitor across stream
// volume, disorder intensity and consistency level over the reusable
// high-volume workload generator, so hot-path regressions show up as a
// grid, not a single point. Stragglers are delayed by 30 events' worth of
// Sync time — deep enough to force snapshot-rollback repairs at repairing
// levels.
func BenchmarkMonitorScaling(b *testing.B) {
	levels := []struct {
		name string
		spec consistency.Spec
	}{
		{"strong", consistency.Strong()},
		{"middle", consistency.Middle()},
		{"weak", consistency.Weak(0)},
	}
	for _, events := range []int{1000, 4000} {
		cfg := workload.DefaultUniform()
		cfg.Events = events
		src := workload.UniformEvents(cfg)
		for _, stragglers := range []float64{0, 0.1, 0.3} {
			var dcfg delivery.Config
			if stragglers == 0 {
				dcfg = delivery.Ordered(20 * temporal.Duration(cfg.Spacing))
			} else {
				dcfg = delivery.Disordered(cfg.Seed, 100*temporal.Duration(cfg.Spacing),
					30*temporal.Duration(cfg.Spacing), stragglers)
			}
			delivered := delivery.Deliver(src, dcfg)
			for _, lv := range levels {
				name := fmt.Sprintf("events=%d/stragglers=%d%%/%s",
					events, int(stragglers*100), lv.name)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						op := operators.NewAggregate(operators.Count, "", "g")
						out, _ := consistency.RunStreams(op, lv.spec, delivered)
						if len(out) == 0 {
							b.Fatal("no output")
						}
					}
					b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
				})
			}
		}
	}
}

// Shard dimension: the same monitor-scaling workload executed by the
// key-partitioned parallel runtime (engine.RunShardedOp) across shard
// counts. The workload uses a wider group fan-out (64 keys) so partitions
// stay balanced; shards=1 measures the sharded runtime's overhead (router,
// tagging, merge) against the plain monitor numbers above.
func BenchmarkMonitorScalingSharded(b *testing.B) {
	cfg := workload.DefaultUniform()
	cfg.Events = 4000
	cfg.Groups = 64
	src := workload.UniformEvents(cfg)
	for _, stragglers := range []float64{0, 0.1} {
		var dcfg delivery.Config
		if stragglers == 0 {
			dcfg = delivery.Ordered(20 * temporal.Duration(cfg.Spacing))
		} else {
			dcfg = delivery.Disordered(cfg.Seed, 100*temporal.Duration(cfg.Spacing),
				30*temporal.Duration(cfg.Spacing), stragglers)
		}
		delivered := delivery.Deliver(src, dcfg)
		for _, shards := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("stragglers=%d%%/middle/shards=%d", int(stragglers*100), shards)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, _, err := engine.RunShardedOp(
						func() operators.Op { return operators.NewAggregate(operators.Count, "", "g") },
						consistency.Middle(), shards, engine.RouteByAttr("g", shards), delivered)
					if err != nil {
						b.Fatal(err)
					}
					if len(out) == 0 {
						b.Fatal("no output")
					}
				}
				b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// End-to-end sharded execution of the §3.1 query through the engine. The
// generic UNLESS evaluator's per-event re-derivation is superlinear in its
// store size, so key-sharding pays twice here: each shard's store holds
// only its machines, shrinking the per-event work — a net win even before
// any parallel wall-clock gain.
func BenchmarkCIDR07Sharded(b *testing.B) {
	src, _ := workload.MachineEvents(workload.Machines{
		Seed: 1, Machines: 24, Cycles: 5,
		RestartDeadline: 5 * temporal.Minute, MissProb: 0.3,
		CycleGap: 30 * temporal.Minute,
	})
	delivered := delivery.Deliver(src, delivery.Ordered(10*temporal.Minute))
	const q = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours), RESTART AS z, 5 minutes)
WHERE CorrelationKey(Machine_Id, EQUAL)
SC(each, consume)`
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := New()
				query, err := sys.Register(q, WithSpec(Middle()), WithShards(shards))
				if err != nil {
					b.Fatal(err)
				}
				sys.Run(delivered)
				if len(query.Alerts()) == 0 {
					b.Fatal("no alerts")
				}
			}
			b.ReportMetric(float64(len(delivered))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// --- Infrastructure ---

func BenchmarkCompileQuery(b *testing.B) {
	const q = `
EVENT MissedRestart
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours), RESTART AS z, 5 minutes)
WHERE {x.Machine_Id = y.Machine_Id} AND {x.Machine_Id = z.Machine_Id}
SC(each, consume) CONSISTENCY middle`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Compile(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeliverySimulator(b *testing.B) {
	src := workload.StockTicks(workload.DefaultTicks())
	cfg := delivery.Disordered(9, 10*temporal.Second, 5*temporal.Second, 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := delivery.Deliver(src, cfg); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkJoinThroughput(b *testing.B) {
	ticks := workload.StockTicks(workload.DefaultTicks())
	news := workload.NewsEvents(workload.DefaultNews())
	dt := delivery.Deliver(ticks, delivery.Ordered(10*temporal.Second))
	dn := delivery.Deliver(news, delivery.Ordered(10*temporal.Second))
	theta := func(l, r event.Payload) bool { return event.ValueEqual(l["symbol"], r["symbol"]) }
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := operators.NewJoin(theta)
		consistency.RunStreams(op, consistency.Middle(), dt, dn)
	}
}
